// Package assert is the design-agnostic security-assertion layer of the
// simulator, in the spirit of "Translating Common Security Assertions Across
// Processor Designs": the microarchitectural guarantees the paper's security
// claims rest on are written once, as declarative properties over a typed TLB
// event stream, and bound per design by capability instead of hard-coded per
// design.
//
// The Monitor wraps any tlb.Inspectable design and, around every instrumented
// operation, snapshots the array, derives the operation's event stream
// (hit/miss/fill/evict/flush/..., each tagged with set, way and security
// domain) and evaluates the design's assertion binding over it. Which
// assertions bind is decided by the capabilities the design declares:
//
//   - every inspectable design gets the core battery — single-transition,
//     lru-freshness, no-duplicate-tag, set-index-consistency,
//     sec-bit-confinement, stats-tally, flush-completeness;
//   - designs exposing a fill partition (assert.Partitioner, the SP TLB) add
//     partition-confinement and no-cross-domain-eviction;
//   - designs exposing a random-fill prediction (assert.RandomFillPredictor,
//     the RF TLB) add rng-stream-integrity and no-fill-on-secure-miss;
//   - designs exposing a cipher-keyed set mapping (assert.KeyedIndexer, the
//     RI TLB) add rekey-completeness, and the monitor's set dispatch — used
//     by set-index-consistency and every placement check — switches to the
//     design's keyed mapping;
//   - designs that flush themselves mid-stream (assert.AutoFlusher — the RI
//     TLB's re-key flush, the FS TLB's switch and secure-exit flushes) move
//     the transition-shape assertions to a flush-then-install arm, and a
//     switch-flushing design additionally arms flush-completeness's
//     per-access residency check (only the current context may be resident);
//   - translation-cross-check joins any binding when Options.CrossCheck is
//     set.
//
// A new design therefore gets the whole robustness battery — and faultbench
// coverage — for free the moment it implements tlb.Inspectable, and tightens
// its own binding simply by declaring more capabilities.
//
// Violations surface as a *Violation error satisfying
// errors.Is(err, ErrViolation), which the resilient campaign runner
// quarantines under the "invariant" kind. The layer is strictly opt-in: an
// unwrapped design pays nothing, and a wrapped design with a nil event Tap
// allocates nothing per access (benchmark-guarded).
package assert

import (
	"errors"
	"fmt"

	"securetlb/internal/tlb"
)

// ErrViolation is the sentinel matched by errors.Is for every assertion
// violation.
var ErrViolation = errors.New("assert: security assertion violated")

// Violation describes one detected assertion violation.
type Violation struct {
	// Assertion is the name of the violated assertion, e.g. "lru-freshness"
	// or "partition-confinement".
	Assertion string
	// Design is the wrapped TLB's Name().
	Design string
	// Detail is a human-readable description of the violation.
	Detail string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("assertion %s violated on %s: %s", v.Assertion, v.Design, v.Detail)
}

// Is reports errors.Is equivalence with ErrViolation.
func (v *Violation) Is(target error) bool { return target == ErrViolation }

// Assertion names, as they appear in Violation.Assertion and faultbench's
// Assertions column.
const (
	NameSingleTransition      = "single-transition"
	NameLRUFreshness          = "lru-freshness"
	NameNoDuplicateTag        = "no-duplicate-tag"
	NameSetIndexConsistency   = "set-index-consistency"
	NameSecBitConfinement     = "sec-bit-confinement"
	NameStatsTally            = "stats-tally"
	NameFlushCompleteness     = "flush-completeness"
	NamePartitionConfinement  = "partition-confinement"
	NameNoCrossDomainEviction = "no-cross-domain-eviction"
	NameRNGStreamIntegrity    = "rng-stream-integrity"
	NameNoFillOnSecureMiss    = "no-fill-on-secure-miss"
	NameRekeyCompleteness     = "rekey-completeness"
	NameTranslationCrossCheck = "translation-cross-check"
)

// Assertion is one declarative property over the TLB event stream. Check
// validates a Translate transition, CheckFlush a flush operation; either may
// be nil when the property does not speak about that operation. Assertions
// are stateless — all state lives in the Access/FlushInfo context — so the
// package-level catalog is shared by every monitor.
type Assertion struct {
	Name string
	// Desc is a one-line statement of the property, for docs and listings.
	Desc       string
	Check      func(a *Access) error
	CheckFlush func(f *FlushInfo) error
}

// Binding is the ordered list of assertions one design must satisfy.
type Binding struct {
	// Design is the bound TLB's Name().
	Design     string
	Assertions []Assertion
}

// Names returns the bound assertion names in evaluation order.
func (b Binding) Names() []string {
	names := make([]string, len(b.Assertions))
	for i, a := range b.Assertions {
		names[i] = a.Name
	}
	return names
}

// BindingFor composes the assertion binding for a design from the
// capabilities it declares. Evaluation order matters for violation naming:
// the transition-shape check runs first, then the design-specific security
// properties (so a partition or RNG escape is named as such rather than as a
// generic LRU anomaly), then the structural array properties, with the
// optional page-table cross-check last (it is the only one that pays an
// extra walk).
func BindingFor(t tlb.TLB, crossCheck bool) Binding {
	b := Binding{Design: t.Name()}
	b.Assertions = append(b.Assertions, SingleTransition)
	if _, ok := t.(RandomFillPredictor); ok {
		b.Assertions = append(b.Assertions, RNGStreamIntegrity, NoFillOnSecureMiss)
	}
	if _, ok := t.(KeyedIndexer); ok {
		// Before the structural checks, so a stuck key or incomplete re-key
		// flush is named as the re-key breach it is rather than a generic
		// placement anomaly.
		b.Assertions = append(b.Assertions, RekeyCompleteness)
	}
	if _, ok := t.(Partitioner); ok {
		// Displacement first, so evicting a resident cross-partition entry
		// is named as the eviction breach it is; installs into empty
		// out-of-range ways then fall to partition-confinement.
		b.Assertions = append(b.Assertions, NoCrossDomainEviction, PartitionConfinement)
	}
	b.Assertions = append(b.Assertions,
		LRUFreshness, NoDuplicateTag, SetIndexConsistency,
		SecBitConfinement, StatsTally, FlushCompleteness)
	if crossCheck {
		b.Assertions = append(b.Assertions, TranslationCrossCheck)
	}
	return b
}

// The assertion catalog. Each is a package-level value so bindings share one
// copy and listings (faultbench -list-assertions, DESIGN.md) can enumerate
// them.
var (
	// SingleTransition: every access performs exactly the one array
	// transition its Result claims — a hit touches only the hit slot and
	// returns the resident PPN, a fill installs exactly the requested
	// translation with a consistent eviction report, a random fill installs
	// exactly the reported D', a buffered no-fill or erroring access leaves
	// the array untouched and never leaks the request into it.
	SingleTransition = Assertion{
		Name:  NameSingleTransition,
		Desc:  "each access performs exactly the one array transition its Result claims",
		Check: checkSingleTransition,
	}

	// LRUFreshness: recency state moves the way true LRU requires — a hit
	// refreshes its entry's stamp to the array-wide maximum, a fill lands on
	// the policy's victim way (first invalid, else least recent, within the
	// design's fill range) with a stamp newer than every resident entry, and
	// per-set stamps always form a strict order.
	LRUFreshness = Assertion{
		Name:  NameLRUFreshness,
		Desc:  "hits refresh LRU stamps, fills take the true LRU victim, per-set stamps stay a strict order",
		Check: checkLRUFreshness,
	}

	// NoDuplicateTag: no (ASID, VPN) translation appears twice in a set.
	NoDuplicateTag = Assertion{
		Name:  NameNoDuplicateTag,
		Desc:  "no (ASID, VPN) tag is duplicated within a set",
		Check: checkNoDuplicateTag,
	}

	// SetIndexConsistency: every valid entry resides in the set its VPN
	// indexes under the design's own set mapping.
	SetIndexConsistency = Assertion{
		Name:  NameSetIndexConsistency,
		Desc:  "every entry resides in the set its VPN indexes",
		Check: checkSetIndexConsistency,
	}

	// SecBitConfinement: Sec bits appear only on entries of the designated
	// victim inside the secure region.
	SecBitConfinement = Assertion{
		Name:  NameSecBitConfinement,
		Desc:  "Sec bits appear only on in-region victim entries",
		Check: checkSecBitConfinement,
	}

	// StatsTally: the hit and miss counters partition the lookup counter.
	StatsTally = Assertion{
		Name:  NameStatsTally,
		Desc:  "hits + misses == lookups",
		Check: checkStatsTally,
	}

	// FlushCompleteness: no entry matching the flushed key survives the
	// flush. On switch-flushing designs (the FS TLB) the per-access arm
	// additionally requires that only the current context's entries are
	// resident after any access — the residue a dropped switch or
	// secure-exit flush would leave behind.
	FlushCompleteness = Assertion{
		Name:       NameFlushCompleteness,
		Desc:       "no surviving entry matches the flushed key",
		Check:      checkFlushResidency,
		CheckFlush: checkFlushCompleteness,
	}

	// RekeyCompleteness (KeyedIndexer designs): a re-key advances the epoch
	// by exactly one, installs exactly the key the key stream prescribes,
	// and erases every pre-re-key entry; outside a re-key the key never
	// moves.
	RekeyCompleteness = Assertion{
		Name:  NameRekeyCompleteness,
		Desc:  "re-keys install the prescribed key and erase every stale entry; the key never moves otherwise",
		Check: checkRekeyCompleteness,
	}

	// PartitionConfinement (Partitioner designs): every install lands inside
	// the filling process's declared way range.
	PartitionConfinement = Assertion{
		Name:  NamePartitionConfinement,
		Desc:  "fills land inside the requester's partition way range",
		Check: checkPartitionConfinement,
	}

	// NoCrossDomainEviction (Partitioner designs): an access never displaces
	// an entry from a slot outside the requester's own partition.
	NoCrossDomainEviction = Assertion{
		Name:  NameNoCrossDomainEviction,
		Desc:  "no access displaces an entry outside the requester's partition",
		Check: checkNoCrossDomainEviction,
	}

	// RNGStreamIntegrity (RandomFillPredictor designs): every random fill
	// installs exactly the D' the engine's PRNG stream prescribes.
	RNGStreamIntegrity = Assertion{
		Name:  NameRNGStreamIntegrity,
		Desc:  "random fills install exactly the D' the RNG stream prescribes",
		Check: checkRNGStreamIntegrity,
	}

	// NoFillOnSecureMiss (RandomFillPredictor designs): a secure-region miss
	// never installs the requested secret translation.
	NoFillOnSecureMiss = Assertion{
		Name:  NameNoFillOnSecureMiss,
		Desc:  "a secure-region miss never installs the requested translation",
		Check: checkNoFillOnSecureMiss,
	}

	// TranslationCrossCheck: the returned PPN matches an independent page
	// walk. The only assertion that catches a corrupted walk whose wrong
	// result the TLB installed faithfully; costs one extra walk per access.
	TranslationCrossCheck = Assertion{
		Name:  NameTranslationCrossCheck,
		Desc:  "returned translations match an independent page-table walk",
		Check: checkTranslationCrossCheck,
	}
)

// Catalog returns every assertion in the library, for listings.
func Catalog() []Assertion {
	return []Assertion{
		SingleTransition, LRUFreshness, NoDuplicateTag, SetIndexConsistency,
		SecBitConfinement, StatsTally, FlushCompleteness,
		PartitionConfinement, NoCrossDomainEviction,
		RNGStreamIntegrity, NoFillOnSecureMiss,
		RekeyCompleteness, TranslationCrossCheck,
	}
}

func checkSingleTransition(a *Access) error {
	m := a.m
	if a.AutoFlush {
		return a.checkAutoFlushTransition()
	}
	if a.Err != nil {
		// Every error path leaves the array untouched.
		if n := a.NDiffs(); n != 0 {
			first := a.diffs[0]
			return a.failf(NameSingleTransition, "erroring access (%v) mutated %d slot(s), first at set %d way %d", a.Err, n, first/m.ways, first%m.ways)
		}
		return nil
	}
	switch {
	case a.Res.Hit:
		idx := a.findPost(a.ASID, a.VPN)
		if idx < 0 {
			return a.failf(NameSingleTransition, "hit reported for asid %d vpn %#x but the translation is not in the array", a.ASID, a.VPN)
		}
		// Zero diffs (a stuck LRU stamp) is lru-freshness's finding, not a
		// shape violation.
		if n := a.NDiffs(); n > 1 || (n == 1 && a.diffs[0] != idx) {
			return a.failf(NameSingleTransition, "hit on asid %d vpn %#x changed %d slot(s), first at set %d way %d (want only set %d way %d)",
				a.ASID, a.VPN, n, a.diffs[0]/m.ways, a.diffs[0]%m.ways, idx/m.ways, idx%m.ways)
		}
		if a.NDiffs() == 1 {
			p, q := m.pre[idx], m.post[idx]
			p.Stamp = q.Stamp
			if p != q {
				return a.failf(NameSingleTransition, "hit on asid %d vpn %#x changed fields beyond the LRU stamp: %+v -> %+v", a.ASID, a.VPN, m.pre[idx], q)
			}
		}
		if q := m.post[idx]; a.Res.PPN != q.PPN {
			return a.failf(NameSingleTransition, "hit returned ppn %#x but the array holds %#x", a.Res.PPN, q.PPN)
		}
		return nil
	case a.Res.RandomFilled:
		if !a.PredOK {
			return a.failf(NameSingleTransition, "%s reported a random fill but declares no random-fill engine", m.design)
		}
		idx := a.findPost(a.ASID, a.Res.RandomVPN)
		if idx < 0 {
			return a.failf(NameSingleTransition, "random fill reported for vpn %#x but the translation is not in the array (dropped fill)", a.Res.RandomVPN)
		}
		if n := a.NDiffs(); n != 1 || a.diffs[0] != idx {
			return a.failf(NameSingleTransition, "random fill of vpn %#x changed %d slot(s) (want only the D' slot)", a.Res.RandomVPN, n)
		}
		if !a.Res.Filled && a.findPost(a.ASID, a.VPN) >= 0 {
			return a.failf(NameSingleTransition, "buffered request asid %d vpn %#x leaked into the array alongside its random fill", a.ASID, a.VPN)
		}
		if p := m.pre[idx]; p.Valid && p.ASID == a.ASID && p.VPN == a.Res.RandomVPN {
			// D' collided with a resident entry: a refresh, not an install.
			q := m.post[idx]
			p.Stamp, p.Sec = q.Stamp, q.Sec
			if p != q {
				return a.failf(NameSingleTransition, "random-fill refresh of vpn %#x changed fields beyond stamp and Sec", a.Res.RandomVPN)
			}
			return nil
		}
		return a.checkEvictReport(idx)
	case a.Res.Filled:
		idx := a.findPost(a.ASID, a.VPN)
		if idx < 0 {
			return a.failf(NameSingleTransition, "fill reported for asid %d vpn %#x but the translation is not in the array (dropped fill)", a.ASID, a.VPN)
		}
		if n := a.NDiffs(); n != 1 || a.diffs[0] != idx {
			first := -1
			if n > 0 {
				first = a.diffs[0]
			}
			return a.failf(NameSingleTransition, "fill of asid %d vpn %#x changed %d slot(s), first at flat index %d (want only %d)", a.ASID, a.VPN, n, first, idx)
		}
		if q := m.post[idx]; q.PPN != a.Res.PPN {
			return a.failf(NameSingleTransition, "fill installed ppn %#x but the access returned %#x", q.PPN, a.Res.PPN)
		}
		return a.checkEvictReport(idx)
	default:
		// No-install access (RF no-fill service, or a skipped random fill):
		// nothing may change, and the requested translation — absent before,
		// or it would have hit — must not have leaked out of the buffer.
		if n := a.NDiffs(); n != 0 {
			return a.failf(NameSingleTransition, "buffered no-fill access mutated %d slot(s)", n)
		}
		if a.findPost(a.ASID, a.VPN) >= 0 {
			return a.failf(NameSingleTransition, "no-fill buffer leaked asid %d vpn %#x into the array", a.ASID, a.VPN)
		}
		return nil
	}
}

// checkAutoFlushTransition is single-transition's arm for an access the
// design predicted would begin with a design-initiated full flush (a due
// re-key, a fallback context switch, a secure-region exit). The pre-access
// snapshot is then no basis for a diff — the legal transition is "erase
// everything, then at most install the request": a hit is impossible, and
// the post array may hold nothing but the fill this access performed.
func (a *Access) checkAutoFlushTransition() error {
	m := a.m
	if a.Res.Hit {
		return a.failf(NameSingleTransition, "hit on asid %d vpn %#x despite a pending design-initiated flush", a.ASID, a.VPN)
	}
	valid, idx := 0, -1
	for i := range m.post {
		if m.post[i].Valid {
			valid++
			idx = i
		}
	}
	if a.Err != nil || !a.Res.Filled {
		if valid != 0 {
			e := m.post[idx]
			return a.failf(NameSingleTransition, "design-initiated flush left %d entrie(s) resident, e.g. asid %d vpn %#x", valid, e.ASID, e.VPN)
		}
		return nil
	}
	if valid == 0 {
		return a.failf(NameSingleTransition, "fill reported for asid %d vpn %#x after a design-initiated flush but the array is empty (dropped fill)", a.ASID, a.VPN)
	}
	if valid > 1 {
		return a.failf(NameSingleTransition, "access after a design-initiated flush left %d valid entries (want only the requested fill)", valid)
	}
	e := m.post[idx]
	if e.ASID != a.ASID || e.VPN != a.VPN || e.PPN != a.Res.PPN {
		return a.failf(NameSingleTransition, "fill after a design-initiated flush installed asid %d vpn %#x ppn %#x, want asid %d vpn %#x ppn %#x",
			e.ASID, e.VPN, e.PPN, a.ASID, a.VPN, a.Res.PPN)
	}
	if want := m.indexFor(a.ASID, a.VPN); idx/m.ways != want {
		return a.failf(NameSingleTransition, "fill after a design-initiated flush landed in set %d, the design's mapping indexes set %d", idx/m.ways, want)
	}
	return nil
}

// checkEvictReport validates the Result's eviction fields against the
// pre-access occupant of the install slot.
func (a *Access) checkEvictReport(idx int) error {
	p := a.m.pre[idx]
	if p.Valid && (!a.Res.Evicted || a.Res.EvictedVPN != p.VPN || a.Res.EvictedASID != p.ASID) {
		return a.failf(NameSingleTransition, "fill displaced asid %d vpn %#x but reported Evicted=%v vpn %#x asid %d", p.ASID, p.VPN, a.Res.Evicted, a.Res.EvictedVPN, a.Res.EvictedASID)
	}
	if !p.Valid && a.Res.Evicted {
		return a.failf(NameSingleTransition, "fill into an invalid way reported an eviction")
	}
	return nil
}

func checkLRUFreshness(a *Access) error {
	m := a.m
	// Per-set stamps must form a strict order (a permutation): two valid
	// entries of one set never share a stamp.
	for s := 0; s < m.sets; s++ {
		for w := 0; w < m.ways; w++ {
			p := &m.post[s*m.ways+w]
			if !p.Valid {
				continue
			}
			for w2 := w + 1; w2 < m.ways; w2++ {
				q := &m.post[s*m.ways+w2]
				if q.Valid && p.Stamp == q.Stamp {
					return a.failf(NameLRUFreshness, "set %d ways %d and %d share LRU stamp %d (order is not a permutation)", s, w, w2, p.Stamp)
				}
			}
		}
	}
	if a.Err != nil {
		return nil
	}
	if a.AutoFlush {
		// The array was rebuilt from empty this access: there is no
		// pre-based victim choice or stamp ordering left to validate.
		return nil
	}
	switch {
	case a.Res.Hit:
		idx := a.findPost(a.ASID, a.VPN)
		if idx < 0 {
			return nil // single-transition's finding
		}
		if a.NDiffs() == 0 {
			return a.failf(NameLRUFreshness, "hit on asid %d vpn %#x did not refresh the LRU stamp (stuck LRU)", a.ASID, a.VPN)
		}
		q := m.post[idx]
		if q.Stamp <= m.pre[idx].Stamp {
			return a.failf(NameLRUFreshness, "hit stamp went %d -> %d (not monotonic)", m.pre[idx].Stamp, q.Stamp)
		}
		for i := range m.post {
			if i != idx && m.post[i].Valid && m.post[i].Stamp >= q.Stamp {
				return a.failf(NameLRUFreshness, "hit entry's stamp %d is not the most recent (set %d way %d holds %d)", q.Stamp, i/m.ways, i%m.ways, m.post[i].Stamp)
			}
		}
		return nil
	case a.Res.RandomFilled:
		idx := a.findPost(a.ASID, a.Res.RandomVPN)
		if idx < 0 {
			return nil
		}
		if p := m.pre[idx]; p.Valid && p.ASID == a.ASID && p.VPN == a.Res.RandomVPN {
			return nil // collision refresh, not an install
		}
		return a.checkInstallLRU(idx, 0, m.ways)
	case a.Res.Filled:
		idx := a.findPost(a.ASID, a.VPN)
		if idx < 0 {
			return nil
		}
		lo, hi := a.fillRange(a.ASID)
		return a.checkInstallLRU(idx, lo, hi)
	}
	return nil
}

// checkInstallLRU validates a fresh install at flat index idx: the policy's
// victim way within [lo, hi) of the install set, and a stamp newer than the
// whole pre-access array.
func (a *Access) checkInstallLRU(idx, lo, hi int) error {
	m := a.m
	s := idx / m.ways
	if want := a.lruIndex(s, lo, hi); idx != want {
		return a.failf(NameLRUFreshness, "fill chose set %d way %d, LRU policy requires way %d", s, idx%m.ways, want%m.ways)
	}
	q := m.post[idx]
	for i := range m.pre {
		if i != idx && m.pre[i].Valid && m.pre[i].Stamp >= q.Stamp {
			return a.failf(NameLRUFreshness, "fill stamp %d is not newer than resident stamp %d (set %d way %d)", q.Stamp, m.pre[i].Stamp, i/m.ways, i%m.ways)
		}
	}
	return nil
}

func checkNoDuplicateTag(a *Access) error {
	m := a.m
	for s := 0; s < m.sets; s++ {
		for w := 0; w < m.ways; w++ {
			p := &m.post[s*m.ways+w]
			if !p.Valid {
				continue
			}
			for w2 := w + 1; w2 < m.ways; w2++ {
				q := &m.post[s*m.ways+w2]
				if q.Valid && p.ASID == q.ASID && p.VPN == q.VPN {
					return a.failf(NameNoDuplicateTag, "asid %d vpn %#x duplicated in set %d ways %d and %d", p.ASID, p.VPN, s, w, w2)
				}
			}
		}
	}
	return nil
}

func checkSetIndexConsistency(a *Access) error {
	m := a.m
	for i := range m.post {
		e := &m.post[i]
		if !e.Valid {
			continue
		}
		if want := m.indexFor(e.ASID, e.VPN); i/m.ways != want {
			return a.failf(NameSetIndexConsistency, "entry for vpn %#x resides in set %d, indexes set %d", e.VPN, i/m.ways, want)
		}
	}
	return nil
}

func checkSecBitConfinement(a *Access) error {
	m := a.m
	for i := range m.post {
		e := &m.post[i]
		if !e.Valid || !e.Sec {
			continue
		}
		if m.sec == nil || m.vic == nil || !m.vic.HasVictim() {
			return a.failf(NameSecBitConfinement, "Sec bit set on asid %d vpn %#x but no victim is designated", e.ASID, e.VPN)
		}
		if victim := m.sec.Victim(); e.ASID != victim {
			return a.failf(NameSecBitConfinement, "Sec bit set on asid %d entry (victim is %d) for vpn %#x", e.ASID, victim, e.VPN)
		}
		if sbase, ssize := m.sec.SecureRegion(); ssize == 0 || e.VPN < sbase || uint64(e.VPN-sbase) >= ssize {
			return a.failf(NameSecBitConfinement, "Sec-bit entry vpn %#x lies outside the secure region [%#x,%#x)", e.VPN, sbase, uint64(sbase)+ssize)
		}
	}
	return nil
}

func checkStatsTally(a *Access) error {
	if s := a.m.inner.Stats(); s.Hits+s.Misses != s.Lookups {
		return a.failf(NameStatsTally, "hits (%d) + misses (%d) != lookups (%d)", s.Hits, s.Misses, s.Lookups)
	}
	return nil
}

func checkFlushCompleteness(f *FlushInfo) error {
	m := f.m
	for i := range m.post {
		e := &m.post[i]
		if !e.Valid {
			continue
		}
		switch f.Kind {
		case KindFlushAll:
			return f.failf("entry for asid %d vpn %#x survived FlushAll", e.ASID, e.VPN)
		case KindFlushASID:
			if e.ASID == f.ASID {
				return f.failf("asid %d entry for vpn %#x survived FlushASID", f.ASID, e.VPN)
			}
		case KindFlushPage:
			if e.ASID == f.ASID && e.VPN == f.VPN {
				return f.failf("asid %d vpn %#x still present after FlushPage", f.ASID, f.VPN)
			}
		case KindFlushPageAll:
			if e.VPN == f.VPN {
				return f.failf("vpn %#x (asid %d) survived FlushPageAllASIDs", f.VPN, e.ASID)
			}
		}
	}
	return nil
}

// checkFlushResidency is flush-completeness's per-access arm; it stands
// down unless the design declares a switch flush. On the FS TLB every
// context switch and secure-region exit erases the whole array, so at no
// point after an access may an entry of another context be resident —
// exactly the residue a dropped flush strobe leaves behind.
func checkFlushResidency(a *Access) error {
	m := a.m
	if m.swf == nil {
		return nil
	}
	for i := range m.post {
		if e := &m.post[i]; e.Valid && e.ASID != a.ASID {
			return a.failf(NameFlushCompleteness, "asid %d vpn %#x resident after an access by asid %d (switch flush incomplete)", e.ASID, e.VPN, a.ASID)
		}
	}
	return nil
}

// checkRekeyCompleteness validates a keyed design's re-key machinery across
// one access: the epoch and key are framed by the monitor before and after
// the inner Translate, with PredKey holding the key a fault-free re-key
// would draw.
func checkRekeyCompleteness(a *Access) error {
	if !a.KeyedOK {
		return nil
	}
	m := a.m
	if a.PostEpoch == a.PreEpoch {
		if a.PostKey != a.PreKey {
			return a.failf(NameRekeyCompleteness, "index key changed %#x -> %#x without an epoch advance", a.PreKey, a.PostKey)
		}
		if a.AutoFlush {
			return a.failf(NameRekeyCompleteness, "due re-key did not happen (epoch stuck at %d)", a.PreEpoch)
		}
		return nil
	}
	if a.PostEpoch != a.PreEpoch+1 {
		return a.failf(NameRekeyCompleteness, "epoch jumped %d -> %d across one access", a.PreEpoch, a.PostEpoch)
	}
	// The re-key must erase everything installed under the old key; the only
	// entry that may be resident is the one this very access installed.
	for i := range m.post {
		e := &m.post[i]
		if e.Valid && !(e.ASID == a.ASID && e.VPN == a.VPN) {
			return a.failf(NameRekeyCompleteness, "asid %d vpn %#x survived the re-key flush", e.ASID, e.VPN)
		}
	}
	if a.PostKey != a.PredKey {
		return a.failf(NameRekeyCompleteness, "re-key installed key %#x, the key stream prescribes %#x (stuck key register)", a.PostKey, a.PredKey)
	}
	return nil
}

func checkPartitionConfinement(a *Access) error {
	if a.Err != nil {
		return nil
	}
	for _, e := range a.Events() {
		if e.Kind != KindFill && e.Kind != KindRandomFill {
			continue
		}
		if e.Way < 0 {
			continue // dropped install: single-transition's finding
		}
		lo, hi := a.m.part.FillRange(e.ASID)
		if e.Way < lo || e.Way >= hi {
			return a.failf(NamePartitionConfinement, "%s for asid %d vpn %#x landed in way %d, outside its partition [%d,%d)", e.Kind, e.ASID, e.VPN, e.Way, lo, hi)
		}
	}
	return nil
}

func checkNoCrossDomainEviction(a *Access) error {
	if a.Err != nil {
		return nil
	}
	m := a.m
	lo, hi := m.part.FillRange(a.ASID)
	for _, i := range a.Diffs() {
		p := &m.pre[i]
		if !p.Valid {
			continue
		}
		if q := &m.post[i]; q.Valid && q.ASID == p.ASID && q.VPN == p.VPN {
			continue // same translation still resident: a refresh, not a displacement
		}
		if w := i % m.ways; w < lo || w >= hi {
			return a.failf(NameNoCrossDomainEviction, "access by asid %d displaced asid %d vpn %#x from way %d, outside the requester's partition [%d,%d)", a.ASID, p.ASID, p.VPN, w, lo, hi)
		}
	}
	return nil
}

func checkRNGStreamIntegrity(a *Access) error {
	if a.Err != nil || !a.PredOK {
		return nil
	}
	if !a.Res.RandomFilled {
		if !a.PredFill || a.Res.Hit {
			return nil
		}
		// The RFE stream prescribes a random fill here and none happened.
		// Legal only when D' is unmapped (footnote 5 mappings missing — the
		// fill is skipped by design) or the lazy ablation engine may starve
		// fills; anything else is a suppressed fill that silently skews the
		// array's occupancy. The monitor's own walk of D' distinguishes the
		// two — it never touches TLB state.
		if a.m.starver != nil && a.m.starver.RandomFillMayStarve() {
			return nil
		}
		if a.m.walker == nil {
			return nil
		}
		if _, _, werr := a.m.walker.Walk(a.ASID, a.PredVPN); werr != nil {
			return nil
		}
		return a.failf(NameRNGStreamIntegrity, "prescribed random fill of mapped vpn %#x was suppressed", a.PredVPN)
	}
	if !a.PredFill {
		return a.failf(NameRNGStreamIntegrity, "random fill of vpn %#x occurred where the RFE stream prescribes none", a.Res.RandomVPN)
	}
	if a.Res.RandomVPN != a.PredVPN {
		return a.failf(NameRNGStreamIntegrity, "random fill chose vpn %#x, the RFE stream prescribes %#x (biased RNG)", a.Res.RandomVPN, a.PredVPN)
	}
	return nil
}

func checkNoFillOnSecureMiss(a *Access) error {
	if a.Err != nil || a.Res.Hit || a.Domain != DomainSecure {
		return nil
	}
	// D and D' may coincide "because of the randomization" (§4.2.1); only
	// then may the requested secure translation legitimately be installed.
	if a.Res.Filled && !(a.Res.RandomFilled && a.Res.RandomVPN == a.VPN) {
		return a.failf(NameNoFillOnSecureMiss, "secure-region miss for asid %d vpn %#x installed the requested translation", a.ASID, a.VPN)
	}
	if !a.Res.Filled && a.findPost(a.ASID, a.VPN) >= 0 {
		return a.failf(NameNoFillOnSecureMiss, "secure-region request asid %d vpn %#x leaked into the array", a.ASID, a.VPN)
	}
	return nil
}

func checkTranslationCrossCheck(a *Access) error {
	if a.Err != nil {
		return nil
	}
	ppn, _, werr := a.m.walker.Walk(a.ASID, a.VPN)
	if werr != nil {
		return a.failf(NameTranslationCrossCheck, "TLB returned %#x for asid %d vpn %#x but the page walk faults: %v", a.Res.PPN, a.ASID, a.VPN, werr)
	}
	if ppn != a.Res.PPN {
		return a.failf(NameTranslationCrossCheck, "TLB returned ppn %#x for asid %d vpn %#x, page tables say %#x", a.Res.PPN, a.ASID, a.VPN, ppn)
	}
	return nil
}
