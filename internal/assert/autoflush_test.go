package assert

import (
	"errors"
	"testing"

	"securetlb/internal/tlb"
)

// TestMonitorRandIdxClean drives a wrapped RI TLB through hundreds of
// accesses spanning dozens of re-keys, with the translation cross-check on:
// a fault-free design must never trip an assertion, in particular not
// rekey-completeness or the auto-flush arm of single-transition.
func TestMonitorRandIdxClean(t *testing.T) {
	w := testWalker()
	ri, err := tlb.NewRandIdx(32, 8, w, 42, 16)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Wrap(ri, w, Options{CrossCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	names := m.Binding().Names()
	found := false
	for _, n := range names {
		if n == NameRekeyCompleteness {
			found = true
		}
	}
	if !found {
		t.Fatalf("RI binding %v does not include %s", names, NameRekeyCompleteness)
	}
	for i := 0; i < 500; i++ {
		if _, err := m.Translate(tlb.ASID(i%3), tlb.VPN(i%37)); err != nil {
			t.Fatalf("access %d: %v", i, err)
		}
	}
	if m.Checks != 500 {
		t.Fatalf("Checks = %d, want 500", m.Checks)
	}
}

// TestMonitorFlushOnSwitchClean drives a wrapped FS TLB through context
// switches (via ObserveASID, the CSR path) and secure-region entries and
// exits: the switch and secure-exit flushes must satisfy the whole binding,
// including flush-completeness's per-access residency arm.
func TestMonitorFlushOnSwitchClean(t *testing.T) {
	w := testWalker()
	fs, err := tlb.NewFlushOnSwitch(32, 8, w)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Wrap(fs, w, Options{CrossCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	m.SetVictim(1)
	m.SetSecureRegion(0x100, 16)
	for i := 0; i < 500; i++ {
		asid := tlb.ASID(i / 50 % 3)
		m.ObserveASID(asid)
		vpn := tlb.VPN(i % 37)
		if i%7 == 0 {
			vpn = 0x100 + tlb.VPN(i%16) // dip into the secure region, forcing exits
		}
		if _, err := m.Translate(asid, vpn); err != nil {
			t.Fatalf("access %d: %v", i, err)
		}
	}
}

// TestRekeyCompletenessCatchesStuckKey arms the randidx-key-stuck fault
// (OnRekey returns the outgoing key) and checks the monitor names the breach
// rekey-completeness: the array flushes but the mapping does not change, and
// the installed key disagrees with the key stream's prescription.
func TestRekeyCompletenessCatchesStuckKey(t *testing.T) {
	w := testWalker()
	ri, err := tlb.NewRandIdx(32, 8, w, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Wrap(ri, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ri.SetFaultHook(&tlb.FaultHook{OnRekey: func(old, next uint64) uint64 { return old }})
	var got error
	for i := 0; i < 100; i++ {
		if _, err := m.Translate(1, tlb.VPN(i)); err != nil {
			got = err
			break
		}
	}
	if !errors.Is(got, ErrViolation) {
		t.Fatalf("stuck key register not caught: %v", got)
	}
	var v *Violation
	if !errors.As(got, &v) || v.Assertion != NameRekeyCompleteness {
		t.Fatalf("violation %v, want assertion %s", got, NameRekeyCompleteness)
	}
}

// TestFlushCompletenessCatchesDroppedSwitchFlush arms the
// flushsw-flush-dropped fault (OnAutoFlush returns false) across a context
// switch and checks the monitor's ObserveASID post-check surfaces the stale
// residency as a flush-completeness violation on the next access.
func TestFlushCompletenessCatchesDroppedSwitchFlush(t *testing.T) {
	w := testWalker()
	fs, err := tlb.NewFlushOnSwitch(32, 8, w)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Wrap(fs, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.ObserveASID(1)
	for i := 0; i < 10; i++ {
		if _, err := m.Translate(1, tlb.VPN(i)); err != nil {
			t.Fatal(err)
		}
	}
	fs.SetFaultHook(&tlb.FaultHook{OnAutoFlush: func() bool { return false }})
	m.ObserveASID(2)
	var got error
	for i := 0; i < 5; i++ {
		if _, err := m.Translate(2, tlb.VPN(100+i)); err != nil {
			got = err
			break
		}
	}
	if !errors.Is(got, ErrViolation) {
		t.Fatalf("dropped switch flush not caught: %v", got)
	}
	var v *Violation
	if !errors.As(got, &v) || v.Assertion != NameFlushCompleteness {
		t.Fatalf("violation %v, want assertion %s", got, NameFlushCompleteness)
	}
}
