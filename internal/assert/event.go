package assert

import (
	"fmt"

	"securetlb/internal/tlb"
)

// Kind classifies one event in the instrumented TLB event stream.
type Kind uint8

const (
	// KindHit is a lookup satisfied from the array.
	KindHit Kind = iota
	// KindMiss is a lookup that required a page walk for the request.
	KindMiss
	// KindFill is the install of the requested translation.
	KindFill
	// KindRandomFill is the install of the RF engine's random D'.
	KindRandomFill
	// KindNoFill is a miss served through the RF no-fill buffer with no
	// install of the requested translation.
	KindNoFill
	// KindEvict is the displacement of a valid entry by an install. The
	// event carries the displaced entry's identity and the slot it lost.
	KindEvict
	// KindError is an access that failed (page-walk fault or design error).
	KindError
	// KindFlushAll / KindFlushASID / KindFlushPage / KindFlushPageAll are
	// the four invalidation operations of tlb.TLB.
	KindFlushAll
	KindFlushASID
	KindFlushPage
	KindFlushPageAll
	// KindSetVictim and KindSetSecureRegion are writes to the security
	// registers of paper §4.2.2.
	KindSetVictim
	KindSetSecureRegion
	// KindContextSwitch is a CSR-delivered ASID change observed by the
	// design (tlb.ASIDObserver).
	KindContextSwitch
	// KindAutoFlush is a design-initiated full flush: the FS TLB's
	// switch/secure-exit flush or the RI TLB's re-key flush.
	KindAutoFlush
)

var kindNames = [...]string{
	KindHit:             "hit",
	KindMiss:            "miss",
	KindFill:            "fill",
	KindRandomFill:      "random-fill",
	KindNoFill:          "no-fill",
	KindEvict:           "evict",
	KindError:           "error",
	KindFlushAll:        "flush-all",
	KindFlushASID:       "flush-asid",
	KindFlushPage:       "flush-page",
	KindFlushPageAll:    "flush-page-all",
	KindSetVictim:       "set-victim",
	KindSetSecureRegion: "set-secure-region",
	KindContextSwitch:   "context-switch",
	KindAutoFlush:       "auto-flush",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Domain is the security domain of an event's subject, derived from the
// design's security registers: the designated victim process, everything
// else ("attacker" under the paper's threat model), and — within the victim —
// the secure virtual page region [sbase, sbase+ssize).
type Domain uint8

const (
	// DomainNone means the design has no victim designated (or tracks no
	// security state at all), so every process is an ordinary process.
	DomainNone Domain = iota
	// DomainAttacker is any process other than the designated victim.
	DomainAttacker
	// DomainVictim is the designated victim outside its secure region.
	DomainVictim
	// DomainSecure is the designated victim inside its secure region.
	DomainSecure
)

var domainNames = [...]string{
	DomainNone:     "none",
	DomainAttacker: "attacker",
	DomainVictim:   "victim",
	DomainSecure:   "secure",
}

// String implements fmt.Stringer.
func (d Domain) String() string {
	if int(d) < len(domainNames) {
		return domainNames[d]
	}
	return fmt.Sprintf("domain(%d)", uint8(d))
}

// Event is one element of the typed TLB event stream the Monitor derives
// from each instrumented operation. A single Translate emits one hit event,
// or a miss event followed by the install events it caused (evict before the
// fill that displaced it); flushes and security-register writes emit one
// event each.
type Event struct {
	Kind Kind
	// ASID and VPN identify the event's subject: the requested translation
	// for hit/miss/fill/no-fill/error, the installed D' for random-fill, the
	// displaced translation for evict, the flushed key for flushes, and the
	// written register value for set-victim.
	ASID tlb.ASID
	VPN  tlb.VPN
	// PPN is the translation returned or installed (zero when not
	// applicable).
	PPN tlb.PPN
	// Set and Way locate the event in the array; -1 when unknown or not
	// applicable (a miss has no way until its fill lands; a dropped fill
	// has Way -1).
	Set int
	Way int
	// Domain is the security domain of (ASID, VPN) at the time of the event.
	Domain Domain
	// Size is the region size for set-secure-region events.
	Size uint64
}

// String implements fmt.Stringer, for logs and event-tap debugging.
func (e Event) String() string {
	return fmt.Sprintf("%s asid=%d vpn=%#x set=%d way=%d dom=%s", e.Kind, e.ASID, e.VPN, e.Set, e.Way, e.Domain)
}
