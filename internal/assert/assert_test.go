package assert

import (
	"errors"
	"testing"

	"securetlb/internal/tlb"
)

// testWalker resolves every page deterministically so clean traffic never
// faults and the cross-check has a ground truth.
func testWalker() tlb.Walker {
	return tlb.WalkerFunc(func(asid tlb.ASID, vpn tlb.VPN) (tlb.PPN, uint64, error) {
		return tlb.PPN(uint64(vpn)<<4 | uint64(asid)), 60, nil
	})
}

func newSA(t *testing.T) *tlb.SetAssoc {
	t.Helper()
	sa, err := tlb.NewSetAssoc(32, 8, testWalker())
	if err != nil {
		t.Fatal(err)
	}
	return sa
}

func newRF(t *testing.T) *tlb.RF {
	t.Helper()
	rf, err := tlb.NewRF(32, 8, testWalker(), 0x5eed)
	if err != nil {
		t.Fatal(err)
	}
	rf.SetVictim(1)
	rf.SetSecureRegion(0x100, 8)
	return rf
}

func newSP(t *testing.T) *tlb.SP {
	t.Helper()
	sp, err := tlb.NewSP(32, 8, 4, testWalker())
	if err != nil {
		t.Fatal(err)
	}
	sp.SetVictim(1)
	return sp
}

func wrap(t *testing.T, inner tlb.TLB) *Monitor {
	t.Helper()
	m, err := Wrap(inner, testWalker(), Options{CrossCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// xorshift is a tiny deterministic generator for the traffic tests.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v >> 12
	v ^= v << 25
	v ^= v >> 27
	*x = xorshift(v)
	return v * 0x2545f4914f6cdd1d
}

// TestCleanTrafficNoViolation drives heavy mixed traffic — hits, misses,
// secure-region accesses, flushes — through every monitored design and
// requires zero violations: the assertion library's legal-transition model
// must match the designs exactly.
func TestCleanTrafficNoViolation(t *testing.T) {
	fa, err := tlb.NewFullyAssoc(32, testWalker())
	if err != nil {
		t.Fatal(err)
	}
	designs := map[string]tlb.TLB{"sa": newSA(t), "fa": fa, "sp": newSP(t), "rf": newRF(t)}
	for name, inner := range designs {
		t.Run(name, func(t *testing.T) {
			m := wrap(t, inner)
			g := xorshift(42)
			for i := 0; i < 5000; i++ {
				asid := tlb.ASID(g.next() % 2)
				vpn := tlb.VPN(0xfc + g.next()%16)
				if g.next()%4 == 0 {
					// Aim some victim traffic into the RF secure region.
					asid, vpn = 1, tlb.VPN(0x100+g.next()%8)
				}
				if _, err := m.Translate(asid, vpn); err != nil {
					t.Fatalf("access %d (asid %d vpn %#x): %v", i, asid, vpn, err)
				}
				switch g.next() % 97 {
				case 0:
					m.FlushAll()
				case 1:
					m.FlushASID(asid)
				case 2:
					m.FlushPage(asid, vpn)
				case 3:
					m.FlushPageAllASIDs(vpn)
				}
			}
			if m.Checks == 0 {
				t.Fatal("monitor performed no checks")
			}
		})
	}
}

// TestBindingComposition pins which assertions each design's capabilities
// pull in.
func TestBindingComposition(t *testing.T) {
	core := []string{
		NameSingleTransition, NameLRUFreshness, NameNoDuplicateTag,
		NameSetIndexConsistency, NameSecBitConfinement, NameStatsTally,
		NameFlushCompleteness,
	}
	has := func(names []string, want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	cases := []struct {
		design  tlb.TLB
		extra   []string
		excLude []string
	}{
		{newSA(t), nil, []string{NamePartitionConfinement, NameRNGStreamIntegrity}},
		{newSP(t), []string{NamePartitionConfinement, NameNoCrossDomainEviction}, []string{NameRNGStreamIntegrity, NameNoFillOnSecureMiss}},
		{newRF(t), []string{NameRNGStreamIntegrity, NameNoFillOnSecureMiss}, []string{NamePartitionConfinement, NameNoCrossDomainEviction}},
	}
	for _, c := range cases {
		names := BindingFor(c.design, true).Names()
		for _, want := range core {
			if !has(names, want) {
				t.Errorf("%s: binding missing core assertion %s", c.design.Name(), want)
			}
		}
		if !has(names, NameTranslationCrossCheck) {
			t.Errorf("%s: cross-check requested but not bound", c.design.Name())
		}
		for _, want := range c.extra {
			if !has(names, want) {
				t.Errorf("%s: binding missing capability assertion %s", c.design.Name(), want)
			}
		}
		for _, not := range c.excLude {
			if has(names, not) {
				t.Errorf("%s: binding has %s despite the design lacking the capability", c.design.Name(), not)
			}
		}
	}
	if n := len(BindingFor(newSA(t), false).Names()); n != 7 {
		t.Errorf("SA no-crosscheck binding has %d assertions, want the 7 core ones", n)
	}
}

// corrupting returns a hook that corrupts (set 0, way) with f on the nth
// OnAccess, modelling an in-array bit error mid-access.
func corrupting(insp tlb.Inspectable, n, way int, f func(*tlb.EntrySnapshot)) *tlb.FaultHook {
	count := 0
	return &tlb.FaultHook{OnAccess: func() {
		count++
		if count == n {
			insp.CorruptEntry(0, way, f)
		}
	}}
}

// fillSet fills the monitor's set 0 with asid-0 entries.
func fillSet(t *testing.T, m *Monitor, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := m.Translate(0, tlb.VPN(i*4)); err != nil {
			t.Fatalf("warm-up fill %d: %v", i, err)
		}
	}
}

func wantViolation(t *testing.T, err error, assertion string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want %s violation, got nil", assertion)
	}
	if !errors.Is(err, ErrViolation) {
		t.Fatalf("want ErrViolation, got %v", err)
	}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("error %v is not a *Violation", err)
	}
	if v.Assertion != assertion {
		t.Fatalf("want assertion %q, got %q (%v)", assertion, v.Assertion, err)
	}
}

func TestDetectsTagFlip(t *testing.T) {
	sa := newSA(t)
	m := wrap(t, sa)
	fillSet(t, m, 4)
	// Flip a tag bit in a *neighbouring* way of the set being hit: the hit's
	// delta must be confined to the hit slot, so the extra change is caught.
	sa.SetFaultHook(corrupting(sa, 1, 1, func(e *tlb.EntrySnapshot) { e.VPN ^= 1 << 7 }))
	_, err := m.Translate(0, 0) // hit on set 0 way 0
	wantViolation(t, err, NameSingleTransition)
}

func TestDetectsPPNFlipOnHit(t *testing.T) {
	// Corrupt the PPN of the entry being hit: the delta is confined to the
	// hit slot, so the cross-check against the page tables must catch it.
	sa := newSA(t)
	m := wrap(t, sa)
	fillSet(t, m, 1)
	sa.SetFaultHook(corrupting(sa, 1, 0, func(e *tlb.EntrySnapshot) { e.PPN ^= 1 << 3 }))
	_, err := m.Translate(0, 0)
	if err == nil || !errors.Is(err, ErrViolation) {
		t.Fatalf("want a violation, got %v", err)
	}
}

func TestDetectsStuckLRU(t *testing.T) {
	sa := newSA(t)
	m := wrap(t, sa)
	fillSet(t, m, 1)
	sa.SetFaultHook(&tlb.FaultHook{OnLRUTouch: func(set, way int) bool { return false }})
	_, err := m.Translate(0, 0) // hit, stamp refresh suppressed
	wantViolation(t, err, NameLRUFreshness)
}

func TestDetectsDroppedFill(t *testing.T) {
	sa := newSA(t)
	m := wrap(t, sa)
	sa.SetFaultHook(&tlb.FaultHook{OnFill: func(set, way int) tlb.FillAction { return tlb.FillDrop }})
	_, err := m.Translate(0, 0)
	wantViolation(t, err, NameSingleTransition)
}

func TestDetectsDuplicatedFill(t *testing.T) {
	sa := newSA(t)
	m := wrap(t, sa)
	sa.SetFaultHook(&tlb.FaultHook{OnFill: func(set, way int) tlb.FillAction { return tlb.FillDuplicate }})
	_, err := m.Translate(0, 0)
	wantViolation(t, err, NameSingleTransition)
}

func TestDetectsBiasedRNG(t *testing.T) {
	rf := newRF(t)
	m := wrap(t, rf)
	rf.SetFaultHook(&tlb.FaultHook{OnRNGDraw: func(n, draw uint64) uint64 { return draw ^ 1 }})
	// A victim access inside the secure region forces a random fill.
	_, err := m.Translate(1, 0x102)
	wantViolation(t, err, NameRNGStreamIntegrity)
}

func TestDetectsSecBitEscape(t *testing.T) {
	// A Sec bit flipped onto an attacker's entry between accesses is invisible
	// to the delta check (the snapshot is taken per access) but must be caught
	// by the global Sec-confinement scan.
	rf := newRF(t)
	m := wrap(t, rf)
	if _, err := m.Translate(0, 4); err != nil { // attacker entry, set 0
		t.Fatal(err)
	}
	if !rf.CorruptEntry(0, 0, func(e *tlb.EntrySnapshot) { e.Sec = true }) {
		t.Fatal("corruption did not land")
	}
	_, err := m.Translate(0, 8)
	wantViolation(t, err, NameSecBitConfinement)
}

func TestDetectsSetIndexCorruption(t *testing.T) {
	sa := newSA(t)
	m := wrap(t, sa)
	fillSet(t, m, 1)
	if !sa.CorruptEntry(0, 0, func(e *tlb.EntrySnapshot) { e.VPN++ }) {
		t.Fatal("corruption did not land")
	}
	_, err := m.Translate(0, 1024) // fresh set-0 miss; global scan runs after
	wantViolation(t, err, NameSetIndexConsistency)
}

// badFlush is an SA TLB whose FlushASID silently does nothing — the kind of
// control-logic fault the flush-completeness assertion exists for.
type badFlush struct {
	*tlb.SetAssoc
}

func (b badFlush) FlushASID(tlb.ASID) {}

func TestFlushViolationSurfacesOnNextAccess(t *testing.T) {
	m := wrap(t, badFlush{newSA(t)})
	fillSet(t, m, 2)
	m.FlushASID(0) // broken: entries survive
	_, err := m.Translate(0, 0)
	wantViolation(t, err, NameFlushCompleteness)
	// The pending violation is one-shot; the monitor then resumes.
	if _, err := m.Translate(0, 0); err != nil {
		t.Fatalf("monitor did not recover after surfacing pending violation: %v", err)
	}
}

func TestUnwrap(t *testing.T) {
	sa := newSA(t)
	m := wrap(t, sa)
	if Unwrap(m) != tlb.TLB(sa) {
		t.Fatal("Unwrap(monitor) != inner")
	}
	if Unwrap(sa) != tlb.TLB(sa) {
		t.Fatal("Unwrap(raw) != raw")
	}
}

func TestCloneWithKeepsChecking(t *testing.T) {
	sa := newSA(t)
	m := wrap(t, sa)
	fillSet(t, m, 2)
	cl := m.CloneWith(testWalker())
	if cl == nil {
		t.Fatal("monitor clone failed")
	}
	mc, ok := cl.(*Monitor)
	if !ok {
		t.Fatalf("clone is %T, want *Monitor", cl)
	}
	inner, ok := Unwrap(mc).(tlb.Inspectable)
	if !ok {
		t.Fatal("clone's inner design is not inspectable")
	}
	inner.SetFaultHook(&tlb.FaultHook{OnFill: func(set, way int) tlb.FillAction { return tlb.FillDrop }})
	_, err := mc.Translate(0, 100)
	wantViolation(t, err, NameSingleTransition)
	// The original keeps working and is unaffected by the clone's hook.
	if _, err := m.Translate(0, 100); err != nil {
		t.Fatalf("original monitor affected by clone: %v", err)
	}
}

func TestWrapRejectsNonInspectable(t *testing.T) {
	two, err := tlb.NewTwoLevel(func(w tlb.Walker) (tlb.TLB, error) {
		return tlb.NewSetAssoc(32, 8, w)
	}, newSA(t))
	if err != nil {
		t.Fatalf("cannot build two-level TLB: %v", err)
	}
	if _, err := Wrap(two, testWalker(), Options{}); err == nil {
		t.Fatal("Wrap accepted a non-inspectable composition")
	}
}

// TestMonitorExcludedFromFastPaths pins the interpreter-fallback guarantee:
// the trace VM promotes designs implementing the fast-path interfaces to a
// register-level loop that would bypass the monitor's snapshotting, so the
// Monitor must never satisfy them.
func TestMonitorExcludedFromFastPaths(t *testing.T) {
	var m tlb.TLB = &Monitor{}
	if _, ok := m.(tlb.FastTranslator); ok {
		t.Fatal("Monitor implements tlb.FastTranslator; assertions would be bypassed by trace replay")
	}
	if _, ok := m.(tlb.CounterReader); ok {
		t.Fatal("Monitor implements tlb.CounterReader; assertions would be bypassed by trace replay")
	}
}

// TestEventStream pins the derived event sequence for a miss/fill, an
// eviction, a hit, a flush and a security-register write on a tiny SA TLB.
func TestEventStream(t *testing.T) {
	sa, err := tlb.NewSetAssoc(4, 2, testWalker())
	if err != nil {
		t.Fatal(err)
	}
	var got []Event
	m, err := Wrap(sa, testWalker(), Options{Tap: func(e Event) { got = append(got, e) }})
	if err != nil {
		t.Fatal(err)
	}
	for _, vpn := range []tlb.VPN{0, 2, 4, 2} {
		if _, err := m.Translate(0, vpn); err != nil {
			t.Fatal(err)
		}
	}
	m.FlushAll()
	m.SetVictim(7)
	want := []Event{
		{Kind: KindMiss, VPN: 0, PPN: 0, Set: 0, Way: -1},
		{Kind: KindFill, VPN: 0, PPN: 0, Set: 0, Way: 0},
		{Kind: KindMiss, VPN: 2, PPN: 0x20, Set: 0, Way: -1},
		{Kind: KindFill, VPN: 2, PPN: 0x20, Set: 0, Way: 1},
		{Kind: KindMiss, VPN: 4, PPN: 0x40, Set: 0, Way: -1},
		{Kind: KindEvict, VPN: 0, Set: 0, Way: 0}, // vpn 0 was LRU
		{Kind: KindFill, VPN: 4, PPN: 0x40, Set: 0, Way: 0},
		{Kind: KindHit, VPN: 2, PPN: 0x20, Set: 0, Way: 1},
		{Kind: KindFlushAll, Set: -1, Way: -1},
		{Kind: KindSetVictim, ASID: 7, Set: -1, Way: -1},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// TestEventDomains pins the security-domain derivation on the RF design.
func TestEventDomains(t *testing.T) {
	rf := newRF(t) // victim 1, secure region [0x100, 0x108)
	var doms []Domain
	m, err := Wrap(rf, testWalker(), Options{Tap: func(e Event) {
		if e.Kind == KindMiss || e.Kind == KindHit {
			doms = append(doms, e.Domain)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	accesses := []struct {
		asid tlb.ASID
		vpn  tlb.VPN
		want Domain
	}{
		{0, 0x50, DomainAttacker},
		{1, 0x50, DomainVictim},
		{1, 0x102, DomainSecure},
	}
	for _, a := range accesses {
		if _, err := m.Translate(a.asid, a.vpn); err != nil {
			t.Fatal(err)
		}
	}
	for i, a := range accesses {
		if doms[i] != a.want {
			t.Errorf("access %d (asid %d vpn %#x): domain %s, want %s", i, a.asid, a.vpn, doms[i], a.want)
		}
	}
}

// TestPow2SetIndexAgreement is the regression for the old checker's private
// `% sets` mapping: the monitor must use the design's own SetIndex (mask at
// power-of-two set counts), so high-bit VPNs can never make checker and TLB
// disagree on set placement — and a non-power-of-two geometry keeps working
// through the modulo path.
func TestPow2SetIndexAgreement(t *testing.T) {
	sa := newSA(t) // 32 entries, 8 ways -> 4 sets, power of two
	for _, vpn := range []tlb.VPN{0, 3, 1 << 40, 1<<40 + 5, ^tlb.VPN(0) - 2} {
		if got, want := sa.SetIndex(vpn), int(uint64(vpn)%4); got != want {
			t.Errorf("SetIndex(%#x) = %d, want %d", vpn, got, want)
		}
	}
	m := wrap(t, sa)
	g := xorshift(9)
	for i := 0; i < 2000; i++ {
		vpn := tlb.VPN(g.next()) // full 64-bit VPNs exercise the mask path
		if _, err := m.Translate(tlb.ASID(g.next()%2), vpn); err != nil {
			t.Fatalf("access %d vpn %#x: %v", i, vpn, err)
		}
	}

	odd, err := tlb.NewSetAssoc(24, 8, testWalker()) // 3 sets: modulo path
	if err != nil {
		t.Fatal(err)
	}
	mo := wrap(t, odd)
	for i := 0; i < 2000; i++ {
		if _, err := mo.Translate(tlb.ASID(g.next()%2), tlb.VPN(g.next())); err != nil {
			t.Fatalf("odd-geometry access %d: %v", i, err)
		}
	}
}

// TestTranslateZeroAlloc pins the zero-cost-when-off guarantee's monitored
// half: steady-state monitored accesses (with cross-check and an event tap)
// allocate nothing, so assertion-enabled campaigns do not churn the GC.
func TestTranslateZeroAlloc(t *testing.T) {
	taps := 0
	for name, inner := range map[string]tlb.TLB{"sa": newSA(t), "sp": newSP(t), "rf": newRF(t)} {
		m, err := Wrap(inner, testWalker(), Options{CrossCheck: true, Tap: func(Event) { taps++ }})
		if err != nil {
			t.Fatal(err)
		}
		g := xorshift(11)
		access := func() {
			asid := tlb.ASID(g.next() % 2)
			vpn := tlb.VPN(0x100 + g.next()%16)
			if _, err := m.Translate(asid, vpn); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		for i := 0; i < 64; i++ {
			access() // reach steady state (snapshot buffers warmed)
		}
		if avg := testing.AllocsPerRun(200, access); avg != 0 {
			t.Errorf("%s: monitored Translate allocates %.1f per access, want 0", name, avg)
		}
	}
	if taps == 0 {
		t.Fatal("event tap never fired")
	}
}

// fakeTLB is a minimal scripted design that exists only in this test: it
// implements tlb.TLB + tlb.Inspectable plus the SetMapper and Partitioner
// capabilities, proving an out-of-tree design gets the assertion battery
// with zero bespoke checker code — including a non-standard (scrambled) set
// mapping the monitor must follow rather than re-derive.
type fakeTLB struct {
	ways, sets int
	arr        []tlb.EntrySnapshot
	clock      uint64
	stats      tlb.Stats
	// fillWayFor, when non-nil, overrides the victim choice — the scripted
	// design bug the partition assertions must catch.
	fillWayFor func(set int, asid tlb.ASID) int
}

func newFake(ways, sets int) *fakeTLB {
	return &fakeTLB{ways: ways, sets: sets, arr: make([]tlb.EntrySnapshot, ways*sets)}
}

// SetIndex implements assert.SetMapper with a deliberately scrambled mapping.
func (f *fakeTLB) SetIndex(vpn tlb.VPN) int {
	return int((uint64(vpn) ^ uint64(vpn)>>3) % uint64(f.sets))
}

// FillRange implements assert.Partitioner: asid 1 owns the lower half.
func (f *fakeTLB) FillRange(asid tlb.ASID) (int, int) {
	if asid == 1 {
		return 0, f.ways / 2
	}
	return f.ways / 2, f.ways
}

func (f *fakeTLB) Translate(asid tlb.ASID, vpn tlb.VPN) (tlb.Result, error) {
	f.stats.Lookups++
	f.clock++
	s := f.SetIndex(vpn)
	set := f.arr[s*f.ways : (s+1)*f.ways]
	for w := range set {
		if set[w].Valid && set[w].ASID == asid && set[w].VPN == vpn {
			set[w].Stamp = f.clock
			f.stats.Hits++
			return tlb.Result{PPN: set[w].PPN, Hit: true, Cycles: 1}, nil
		}
	}
	f.stats.Misses++
	lo, hi := f.FillRange(asid)
	w, oldest := lo, ^uint64(0)
	for i := lo; i < hi; i++ {
		if !set[i].Valid {
			w, oldest = i, 0
			break
		}
		if set[i].Stamp < oldest {
			w, oldest = i, set[i].Stamp
		}
	}
	if f.fillWayFor != nil {
		w = f.fillWayFor(s, asid)
	}
	res := tlb.Result{PPN: tlb.PPN(uint64(vpn)<<4 | uint64(asid)), Filled: true, Cycles: 10}
	if set[w].Valid {
		res.Evicted, res.EvictedVPN, res.EvictedASID = true, set[w].VPN, set[w].ASID
		f.stats.Evictions++
	}
	set[w] = tlb.EntrySnapshot{Valid: true, ASID: asid, VPN: vpn, PPN: res.PPN, Stamp: f.clock}
	f.stats.Fills++
	return res, nil
}

func (f *fakeTLB) Probe(asid tlb.ASID, vpn tlb.VPN) bool {
	s := f.SetIndex(vpn)
	for _, e := range f.arr[s*f.ways : (s+1)*f.ways] {
		if e.Valid && e.ASID == asid && e.VPN == vpn {
			return true
		}
	}
	return false
}

func (f *fakeTLB) FlushAll() {
	for i := range f.arr {
		f.arr[i] = tlb.EntrySnapshot{}
	}
	f.stats.Flushes++
}

func (f *fakeTLB) FlushASID(asid tlb.ASID) {
	for i := range f.arr {
		if f.arr[i].Valid && f.arr[i].ASID == asid {
			f.arr[i] = tlb.EntrySnapshot{}
		}
	}
	f.stats.Flushes++
}

func (f *fakeTLB) FlushPage(asid tlb.ASID, vpn tlb.VPN) bool {
	f.stats.Flushes++
	any := false
	for i := range f.arr {
		if f.arr[i].Valid && f.arr[i].ASID == asid && f.arr[i].VPN == vpn {
			f.arr[i] = tlb.EntrySnapshot{}
			any = true
		}
	}
	return any
}

func (f *fakeTLB) FlushPageAllASIDs(vpn tlb.VPN) bool {
	f.stats.Flushes++
	any := false
	for i := range f.arr {
		if f.arr[i].Valid && f.arr[i].VPN == vpn {
			f.arr[i] = tlb.EntrySnapshot{}
			any = true
		}
	}
	return any
}

func (f *fakeTLB) Stats() tlb.Stats { return f.stats }
func (f *fakeTLB) ResetStats()      { f.stats = tlb.Stats{} }
func (f *fakeTLB) Entries() int     { return f.ways * f.sets }
func (f *fakeTLB) Ways() int        { return f.ways }
func (f *fakeTLB) Name() string     { return "FAKE" }

func (f *fakeTLB) SnapshotAppend(dst []tlb.EntrySnapshot) []tlb.EntrySnapshot {
	return append(dst, f.arr...)
}

func (f *fakeTLB) CorruptEntry(set, way int, fn func(*tlb.EntrySnapshot)) bool {
	i := set*f.ways + way
	if set < 0 || set >= f.sets || way < 0 || way >= f.ways || !f.arr[i].Valid {
		return false
	}
	fn(&f.arr[i])
	return true
}

func (f *fakeTLB) SetFaultHook(*tlb.FaultHook) {}

// TestFakeDesignCleanTraffic: a design the assertion layer has never seen,
// with a scrambled set mapping and its own partition policy, passes the full
// battery on clean traffic — the monitor checks against the design's
// declared capabilities instead of hard-coded per-design knowledge.
func TestFakeDesignCleanTraffic(t *testing.T) {
	f := newFake(4, 4)
	m, err := Wrap(f, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := xorshift(3)
	for i := 0; i < 3000; i++ {
		if _, err := m.Translate(tlb.ASID(g.next()%2), tlb.VPN(g.next()%64)); err != nil {
			t.Fatalf("access %d: %v", i, err)
		}
		if g.next()%61 == 0 {
			m.FlushASID(tlb.ASID(g.next() % 2))
		}
	}
}

// TestFakeDesignPartitionEscape: a scripted fill into an empty way outside
// the requester's declared range is named partition-confinement.
func TestFakeDesignPartitionEscape(t *testing.T) {
	f := newFake(4, 4)
	m, err := Wrap(f, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.fillWayFor = func(set int, asid tlb.ASID) int { return 0 } // asid 0 belongs in [2,4)
	_, verr := m.Translate(0, 8)
	wantViolation(t, verr, NamePartitionConfinement)
}

// TestFakeDesignCrossDomainEviction: a scripted fill that displaces the
// other domain's resident entry is named no-cross-domain-eviction.
func TestFakeDesignCrossDomainEviction(t *testing.T) {
	f := newFake(4, 4)
	m, err := Wrap(f, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vpnA, vpnB := tlb.VPN(0), tlb.VPN(9)
	if f.SetIndex(vpnA) != f.SetIndex(vpnB) {
		t.Fatalf("test wants aliasing vpns, got sets %d and %d", f.SetIndex(vpnA), f.SetIndex(vpnB))
	}
	if _, err := m.Translate(1, vpnA); err != nil { // victim entry at way 0
		t.Fatal(err)
	}
	f.fillWayFor = func(set int, asid tlb.ASID) int { return 0 }
	_, verr := m.Translate(0, vpnB) // attacker displaces the victim's entry
	wantViolation(t, verr, NameNoCrossDomainEviction)
}

// BenchmarkTranslate compares raw design access cost against monitored
// access cost; the "raw" case is the design itself (no wrapper exists when
// assertions are off, so the only residual cost is the nil fault-hook
// tests — the zero-cost-when-off guarantee).
func BenchmarkTranslate(b *testing.B) {
	bench := func(b *testing.B, t tlb.TLB) {
		b.ReportAllocs()
		g := xorshift(7)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := t.Translate(tlb.ASID(g.next()%2), tlb.VPN(g.next()%64)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("raw", func(b *testing.B) {
		sa, _ := tlb.NewSetAssoc(32, 8, testWalker())
		bench(b, sa)
	})
	b.Run("monitored", func(b *testing.B) {
		sa, _ := tlb.NewSetAssoc(32, 8, testWalker())
		m, err := Wrap(sa, testWalker(), Options{})
		if err != nil {
			b.Fatal(err)
		}
		bench(b, m)
	})
	b.Run("monitored-crosscheck", func(b *testing.B) {
		sa, _ := tlb.NewSetAssoc(32, 8, testWalker())
		m, err := Wrap(sa, testWalker(), Options{CrossCheck: true})
		if err != nil {
			b.Fatal(err)
		}
		bench(b, m)
	})
}
