// Package securetlb is a from-scratch Go reproduction of "Secure TLBs"
// (Deng, Xiong, Szefer — ISCA 2019).
//
// It provides, behind one facade:
//
//   - the three-step TLB vulnerability model (§3): exhaustive enumeration of
//     the 24 timing-based TLB vulnerability types of Table 2, the Appendix B
//     extension with targeted invalidations (Table 7), and the Appendix A
//     soundness reduction of longer patterns (Algorithm 1);
//   - the TLB designs (§4): standard set-associative and fully-associative
//     TLBs, the Static-Partition (SP) TLB and the Random-Fill (RF) TLB, on
//     top of a cycle-approximate RISC-V-like simulation substrate (core,
//     assembler, page tables, physical memory);
//   - the micro security benchmarks (§5.1) and channel-capacity analysis
//     (§5.2–5.3) reproducing Table 4;
//   - the attack library, including an end-to-end TLBleed-style RSA key
//     recovery;
//   - the performance evaluation (§6) reproducing Figures 7a–7f, and the
//     analytical area model reproducing Table 5.
//
// The deeper APIs live in the internal packages (internal/model,
// internal/tlb, internal/secbench, internal/perf, internal/area, …); this
// package re-exports the entry points a downstream user needs.
package securetlb

import (
	"securetlb/internal/area"
	"securetlb/internal/attack"
	"securetlb/internal/cache"
	"securetlb/internal/capacity"
	"securetlb/internal/model"
	"securetlb/internal/perf"
	"securetlb/internal/secbench"
	"securetlb/internal/tlb"
	"securetlb/internal/victim"
)

// Core TLB types.
type (
	// TLB is the interface implemented by every design.
	TLB = tlb.TLB
	// SecureTLB adds the victim/secure-region registers of the SP/RF TLBs.
	SecureTLB = tlb.SecureTLB
	// Walker resolves translations on TLB misses.
	Walker = tlb.Walker
	// WalkerFunc adapts a function to Walker.
	WalkerFunc = tlb.WalkerFunc
	// ASID is a process ID; VPN and PPN are virtual/physical page numbers.
	ASID = tlb.ASID
	VPN  = tlb.VPN
	PPN  = tlb.PPN
)

// NewSATLB returns a standard set-associative TLB (paper baseline).
func NewSATLB(entries, ways int, w Walker) (*tlb.SetAssoc, error) {
	return tlb.NewSetAssoc(entries, ways, w)
}

// NewFATLB returns a fully-associative TLB.
func NewFATLB(entries int, w Walker) (*tlb.SetAssoc, error) {
	return tlb.NewFullyAssoc(entries, w)
}

// NewSPTLB returns the Static-Partition TLB of §4.1.
func NewSPTLB(entries, ways, victimWays int, w Walker) (*tlb.SP, error) {
	return tlb.NewSP(entries, ways, victimWays, w)
}

// NewRFTLB returns the Random-Fill TLB of §4.2.
func NewRFTLB(entries, ways int, w Walker, seed uint64) (*tlb.RF, error) {
	return tlb.NewRF(entries, ways, w, seed)
}

// NewRITLB returns the Randomized-Index (TLBcoat-style) extension TLB: set
// indexing through a per-process keyed cipher, re-keyed every rekeyFills
// fills (0 disables re-keying).
func NewRITLB(entries, ways int, w Walker, seed, rekeyFills uint64) (*tlb.RandIdx, error) {
	return tlb.NewRandIdx(entries, ways, w, seed, rekeyFills)
}

// NewFSTLB returns the Flush-on-Switch (SIMF-style) extension TLB: a plain
// SA array flushed whole on every context switch and secure-region exit.
func NewFSTLB(entries, ways int, w Walker) (*tlb.FlushOnSwitch, error) {
	return tlb.NewFlushOnSwitch(entries, ways, w)
}

// Three-step model.
type (
	// Vulnerability is one row of Table 2 / Table 7.
	Vulnerability = model.Vulnerability
	// Pattern is a Step1 ⇝ Step2 ⇝ Step3 state triple.
	Pattern = model.Pattern
	// State is a TLB-block state of Table 1 / Table 6.
	State = model.State
	// DefenseReport records which designs defend one vulnerability.
	DefenseReport = model.DefenseReport
)

// EnumerateVulnerabilities derives the 24 vulnerability types of Table 2.
func EnumerateVulnerabilities() []Vulnerability { return model.Enumerate() }

// EnumerateExtendedVulnerabilities derives the additional Appendix B types
// (Table 7) available when targeted TLB invalidation exists.
func EnumerateExtendedVulnerabilities() []Vulnerability { return model.EnumerateExtended() }

// AnalyzeDefenses reports, analytically, which of the 24 types the SA, SP
// and RF TLBs defend (Table 4's zero-capacity pattern: 10, 14 and 24).
func AnalyzeDefenses() []DefenseReport { return model.AnalyzeDefenses() }

// ReducePattern applies Appendix A's Algorithm 1 to an arbitrary-length
// access pattern, returning its embedded three-step vulnerabilities.
func ReducePattern(steps []State) []Vulnerability {
	return model.Reduce(steps).Effective
}

// Channel capacity.

// MutualInformation evaluates Eq. (1): the capacity of the binary timing
// channel with miss probabilities p1 (victim maps) and p2 (victim does not).
func MutualInformation(p1, p2 float64) float64 { return capacity.MutualInformation(p1, p2) }

// Security benchmarks (Table 4).
type (
	// SecurityResult is one empirical Table 4 row.
	SecurityResult = secbench.Result
	// SecurityDesign selects SA, SP or RF for a campaign.
	SecurityDesign = secbench.Design
)

// Security evaluation designs.
const (
	SA = secbench.DesignSA
	SP = secbench.DesignSP
	RF = secbench.DesignRF
)

// SecurityEvaluation generates and runs the micro security benchmarks for
// all 24 vulnerability types on the given design (paper §5.3 setup: 8-way
// 32-entry TLB, `trials` mapped + `trials` not-mapped runs each).
func SecurityEvaluation(design SecurityDesign, trials int) ([]SecurityResult, error) {
	cfg := secbench.DefaultConfig(design)
	if trials > 0 {
		cfg.Trials = trials
	}
	return cfg.RunAll()
}

// GenerateSecurityBenchmark emits the assembly source of one micro security
// benchmark (Figure 6 template).
func GenerateSecurityBenchmark(design SecurityDesign, v Vulnerability, mapped bool) (string, error) {
	return secbench.DefaultConfig(design).Generate(v, mapped)
}

// Attacks.
type (
	// AttackEnvironment binds a TLB with attacker/victim process IDs.
	AttackEnvironment = attack.Environment
	// RSAVictim is the traced libgcrypt-style modular exponentiation.
	RSAVictim = victim.RSA
	// TLBleedResult summarises a key-recovery attempt.
	TLBleedResult = attack.TLBleedResult
)

// NewRSAVictim generates a deterministic toy RSA instance whose decryption
// page-trace leaks the key through the tp pointer page (Figure 5).
func NewRSAVictim(bits int, seed uint64) (*RSAVictim, error) {
	return victim.NewRSA(bits, seed)
}

// Performance evaluation (Figure 7).
type (
	// PerfDesign selects the design for performance runs.
	PerfDesign = perf.Design
	// PerfRow is one Figure 7 bar.
	PerfRow = perf.Row
	// PerfMetrics carries IPC and MPKI.
	PerfMetrics = perf.Metrics
)

// Figure7 regenerates one design's Figure 7 sweep: every TLB geometry ×
// {RSA alone, RSA with each SPEC stand-in}, with `decrypts` RSA runs.
func Figure7(design PerfDesign, secure bool, decrypts int, seed uint64) ([]PerfRow, error) {
	return perf.Figure7(design, secure, decrypts, seed)
}

// Area model (Table 5).
type AreaEstimate = area.Estimate

// Table5 computes the analytical area estimates for all 19 configurations.
func Table5() []AreaEstimate { return area.Table5() }

// NewCoalescedTLB returns a COLT-style coalesced TLB (the §6.4 extension):
// entries cover up to span contiguous, frame-contiguous pages.
func NewCoalescedTLB(entries, ways, span int, w Walker) (*tlb.Coalesced, error) {
	return tlb.NewCoalesced(entries, ways, span, w)
}

// NewCoalescedSPTLB returns a coalesced TLB with SP-style way partitioning,
// recovering the effective capacity partitioning costs.
func NewCoalescedSPTLB(entries, ways, span, victimWays int, w Walker) (*tlb.Coalesced, error) {
	return tlb.NewCoalescedSP(entries, ways, span, victimWays, w)
}

// NewTwoLevelTLB composes a TLB hierarchy: mkL1 builds the first level over
// a walker that falls through to l2. The paper's designs apply per level
// (§4: "it can be applied to instruction TLBs as well as other levels of
// TLB"); securing only the L1 leaves the L2's timing observable.
func NewTwoLevelTLB(mkL1 func(Walker) (TLB, error), l2 TLB) (*tlb.TwoLevel, error) {
	return tlb.NewTwoLevel(mkL1, l2)
}

// NewL1DataCache builds the L1 data-cache model used by the cache-vs-TLB
// comparison (§1's claim that cache defenses do not stop TLB attacks).
// victimWays > 0 hardens the cache with SP-style way partitioning.
func NewL1DataCache(sizeBytes, ways, lineSize, victimWays int) (*cache.Cache, error) {
	return cache.New(sizeBytes, ways, lineSize, victimWays)
}
