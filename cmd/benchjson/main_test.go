package main

import (
	"bufio"
	"math"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: securetlb
cpu: whatever
BenchmarkTable4SecurityEvalRF-8         	      20	   2000000 ns/op
BenchmarkTable4SecurityEvalRF-8         	      20	   1900000 ns/op
BenchmarkTable4SecurityEvalRF-8         	      20	   2100000 ns/op
BenchmarkTable4SecurityEvalRFFullExec-8 	      20	  10000000 ns/op
BenchmarkTable4SecurityEvalRFFullExec-8 	      20	  10400000 ns/op
BenchmarkTable4SecurityEvalRFFullExec-8 	      20	   9800000 ns/op
BenchmarkCampaignTraceReplay-8          	      20	   4650000 ns/op	    1024 B/op	      12 allocs/op
BenchmarkCampaignFullExec-8             	      20	  21300000 ns/op	    2048 B/op	      24 allocs/op
BenchmarkFigure7TraceReplay-8           	       5	  18500000 ns/op	    4000 allocs/op
BenchmarkFigure7FullExec-8              	       5	  39000000 ns/op	  265000 allocs/op
PASS
ok  	securetlb	12.345s
`

func scan(s string) *bufio.Scanner { return bufio.NewScanner(strings.NewReader(s)) }

func TestParseAggregatesAndPairs(t *testing.T) {
	r, err := parse(scan(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if r.GoMaxProcs != 8 {
		t.Errorf("gomaxprocs = %d, want 8", r.GoMaxProcs)
	}
	if len(r.Benchmarks) != 6 {
		t.Fatalf("benchmarks = %d, want 6", len(r.Benchmarks))
	}

	rf := r.Benchmarks[0]
	if rf.Name != "Table4SecurityEvalRF" || rf.Samples != 3 || rf.Iterations != 60 {
		t.Errorf("rf aggregate = %+v", rf)
	}
	if rf.NsPerOp != 2000000 { // median of 2.0/1.9/2.1 ms
		t.Errorf("rf median = %v, want 2000000", rf.NsPerOp)
	}
	if rf.NsPerOpMin != 1900000 {
		t.Errorf("rf min = %v, want 1900000", rf.NsPerOpMin)
	}

	camp := r.Benchmarks[2]
	if camp.Metrics["B/op"] != 1024 || camp.Metrics["allocs/op"] != 12 {
		t.Errorf("campaign metrics = %v", camp.Metrics)
	}

	if len(r.Speedups) != 3 {
		t.Fatalf("speedups = %d, want 3: %+v", len(r.Speedups), r.Speedups)
	}
	want := map[string]float64{
		"Table4SecurityEvalRF": 10000000.0 / 2000000, // median/median = 5x
		"Campaign":             21300000.0 / 4650000,
		"Figure7":              39000000.0 / 18500000,
	}
	for _, s := range r.Speedups {
		w, ok := want[s.Pair]
		if !ok {
			t.Errorf("unexpected pair %q", s.Pair)
			continue
		}
		if math.Abs(s.Speedup-w) > 1e-9 {
			t.Errorf("%s speedup = %v, want %v", s.Pair, s.Speedup, w)
		}
		delete(want, s.Pair)
	}
	for p := range want {
		t.Errorf("missing pair %q", p)
	}
}

func TestParsePairMatchesBareBase(t *testing.T) {
	// <base> and <base>FullExec (no TraceReplay suffix) must pair too.
	r, err := parse(scan(
		"BenchmarkX-2 10 100 ns/op\nBenchmarkXFullExec-2 10 500 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Speedups) != 1 || r.Speedups[0].Speedup != 5 {
		t.Fatalf("speedups = %+v", r.Speedups)
	}
	if r.Speedups[0].Replay != "X" || r.Speedups[0].FullExec != "XFullExec" {
		t.Fatalf("pair names = %+v", r.Speedups[0])
	}
}

func TestParseNoProcsSuffix(t *testing.T) {
	// GOMAXPROCS=1 output has no -N suffix on the name.
	r, err := parse(scan("BenchmarkY 100 42.5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Benchmarks[0].Name != "Y" || r.Benchmarks[0].NsPerOp != 42.5 {
		t.Fatalf("benchmark = %+v", r.Benchmarks[0])
	}
	if r.GoMaxProcs != 0 {
		t.Errorf("gomaxprocs = %d, want 0", r.GoMaxProcs)
	}
}

func TestParseEmptyInputFails(t *testing.T) {
	if _, err := parse(scan("PASS\nok x 1s\n")); err == nil {
		t.Fatal("want error on input with no benchmark lines")
	}
}
