// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON summary, aggregating repeated runs (-count N) into
// per-benchmark medians and deriving replay-vs-full-execution speedups for
// the trace-replay A/B pairs.
//
// `make bench` pipes the campaign benchmarks through it to produce
// BENCH_campaign.json, the checked-in record of the trace-replay speedup:
//
//	go test -run xxx -bench 'Table4SecurityEvalRF|Campaign|Figure7(TraceReplay|FullExec)' \
//	    -benchtime 20x -count 5 . | go run ./cmd/benchjson -out BENCH_campaign.json
//
// Speedup pairs are matched by naming convention: a benchmark named
// <base>FullExec is the full-execution twin of <base> or <base>TraceReplay,
// whichever exists; the recorded speedup is the ratio of the two medians
// (medians, not means, so a single noisy run cannot skew the record).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line, e.g.
//
//	BenchmarkTable4SecurityEvalRF-8   20   1904506 ns/op   12 B/op   0 allocs/op
//
// The GOMAXPROCS suffix is optional (absent when GOMAXPROCS=1).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// metricPair matches the trailing "<value> <unit>" extras on a result line
// (B/op, allocs/op, and any b.ReportMetric unit).
var metricPair = regexp.MustCompile(`([0-9.]+) (\S+)`)

type sample struct {
	nsPerOp float64
	iters   uint64
	metrics map[string]float64
}

// Benchmark is the aggregated record of one benchmark across -count runs.
type Benchmark struct {
	Name       string             `json:"name"`
	Samples    int                `json:"samples"`
	Iterations uint64             `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`     // median across samples
	NsPerOpMin float64            `json:"ns_per_op_min"` // fastest sample
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Speedup records one replay-vs-full A/B pair.
type Speedup struct {
	Pair          string  `json:"pair"`
	Replay        string  `json:"replay"`
	FullExec      string  `json:"full_exec"`
	ReplayNsPerOp float64 `json:"replay_ns_per_op"`
	FullNsPerOp   float64 `json:"full_ns_per_op"`
	Speedup       float64 `json:"speedup"`
}

// Report is the top-level JSON document.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GoMaxProcs int         `json:"gomaxprocs,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Speedups   []Speedup   `json:"speedups,omitempty"`
}

func main() {
	out := flag.String("out", "", "write the JSON report here instead of stdout")
	flag.Parse()

	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	// Echo the headline numbers so `make bench` still reads like a benchmark.
	for _, s := range report.Speedups {
		fmt.Printf("%s: %.2fx (replay %.3fms, full %.3fms)\n",
			s.Pair, s.Speedup, s.ReplayNsPerOp/1e6, s.FullNsPerOp/1e6)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(report.Benchmarks))
}

type lineScanner interface {
	Scan() bool
	Text() string
	Err() error
}

// parse consumes `go test -bench` output and builds the aggregated report.
// Non-benchmark lines (the PASS/ok trailer, compile output) are ignored, so
// the full `go test` stream can be piped in unfiltered.
func parse(sc lineScanner) (*Report, error) {
	samples := map[string][]sample{}
	order := []string{}
	procs := 0
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		if m[2] != "" {
			if p, err := strconv.Atoi(m[2]); err == nil {
				procs = p
			}
		}
		iters, _ := strconv.ParseUint(m[3], 10, 64)
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		s := sample{nsPerOp: ns, iters: iters}
		for _, mm := range metricPair.FindAllStringSubmatch(m[5], -1) {
			v, err := strconv.ParseFloat(mm[1], 64)
			if err != nil {
				continue
			}
			if s.metrics == nil {
				s.metrics = map[string]float64{}
			}
			s.metrics[mm[2]] = v
		}
		if _, seen := samples[name]; !seen {
			order = append(order, name)
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}

	report := &Report{GoVersion: runtime.Version(), GoMaxProcs: procs}
	byName := map[string]*Benchmark{}
	for _, name := range order {
		ss := samples[name]
		b := Benchmark{Name: name, Samples: len(ss)}
		vals := make([]float64, len(ss))
		min := ss[0].nsPerOp
		units := map[string][]float64{}
		for i, s := range ss {
			vals[i] = s.nsPerOp
			b.Iterations += s.iters
			if s.nsPerOp < min {
				min = s.nsPerOp
			}
			for u, v := range s.metrics {
				units[u] = append(units[u], v)
			}
		}
		b.NsPerOp = median(vals)
		b.NsPerOpMin = min
		for u, vs := range units {
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[u] = median(vs)
		}
		report.Benchmarks = append(report.Benchmarks, b)
		byName[name] = &report.Benchmarks[len(report.Benchmarks)-1]
	}

	for _, name := range order {
		base, ok := strings.CutSuffix(name, "FullExec")
		if !ok || base == "" {
			continue
		}
		full := byName[name]
		replay := byName[base]
		if replay == nil {
			replay = byName[base+"TraceReplay"]
		}
		if replay == nil || replay.NsPerOp <= 0 {
			continue
		}
		report.Speedups = append(report.Speedups, Speedup{
			Pair:          base,
			Replay:        replay.Name,
			FullExec:      full.Name,
			ReplayNsPerOp: replay.NsPerOp,
			FullNsPerOp:   full.NsPerOp,
			Speedup:       full.NsPerOp / replay.NsPerOp,
		})
	}
	return report, nil
}

func median(vs []float64) float64 {
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
