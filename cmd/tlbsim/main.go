// Command tlbsim assembles and runs a program on the simulated processor,
// with a selectable D-TLB design — the smallest way to experiment with the
// paper's hardware. Programs use the Figure 6 dialect (see internal/asm):
// RISC-V-style mnemonics, ldnorm/ldrand, the security CSRs, and .data with
// .dword/.page/.org directives.
//
// Usage:
//
//	tlbsim prog.s                          # 4W-32 SA TLB
//	tlbsim -tlb rf -entries 32 -ways 8 -seed 7 prog.s
//	tlbsim -tlb sp -victim-ways 4 prog.s
//	echo 'pass' | tlbsim -                 # read from stdin
//
// With -server, tlbsim is instead a client for the tlbserved daemon:
//
//	tlbsim -server http://host:8321 -campaign secbench -design sa -trials 500
//	tlbsim -server http://host:8321 -campaign perf -secure
//	tlbsim -server http://host:8321 -job <id>      # attach to a job's stream
//	tlbsim -server http://host:8321 -cancel <id>
//	tlbsim -server http://host:8321 -metrics
//
// After the run, the exit code, registers x1-x31 (non-zero only), counters
// and TLB statistics are printed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"securetlb/internal/asm"
	"securetlb/internal/cpu"
	"securetlb/internal/tlb"
)

func main() {
	design := flag.String("tlb", "sa", "D-TLB design: sa, fa, sp, rf, ri, fs, 1e")
	entries := flag.Int("entries", 32, "TLB entries")
	ways := flag.Int("ways", 4, "TLB ways (ignored for fa/1e)")
	victimWays := flag.Int("victim-ways", 0, "SP victim partition ways (default half)")
	seed := flag.Uint64("seed", 1, "RF/RI PRNG seed")
	rekeyFills := flag.Uint64("rekey-fills", 16, "RI re-key period in fills (0 disables re-keying)")
	memLatency := flag.Uint64("mem-latency", 20, "memory access latency in cycles (walk = 3x)")
	maxInstr := flag.Uint64("max-instr", 10_000_000, "instruction budget")
	varFlush := flag.Bool("variable-flush", false, "enable Appendix B variable-timing invalidation")

	var client clientFlags
	flag.StringVar(&client.server, "server", "", "tlbserved base URL; switches to client mode")
	flag.StringVar(&client.campaign, "campaign", "", "campaign kind to submit: secbench or perf (client mode)")
	flag.StringVar(&client.design, "design", "all", "campaign designs: a comma-separated combination of sa, sp, rf, ri, fs (and fa for secbench), \"all\" or \"full\" (client mode)")
	flag.IntVar(&client.trials, "trials", 0, "secbench trials per behaviour, 0 = server default (client mode)")
	flag.BoolVar(&client.extended, "extended", false, "Appendix B benchmark set (client mode)")
	flag.BoolVar(&client.invariants, "invariants", false, "enable runtime invariant checking (client mode)")
	flag.BoolVar(&client.secure, "secure", false, "SecRSA perf sweep variant (client mode)")
	flag.IntVar(&client.decrypts, "decrypts", 0, "perf decryptions per run, 0 = server default (client mode)")
	flag.StringVar(&client.jobID, "job", "", "attach to an existing job ID (client mode)")
	flag.StringVar(&client.cancelID, "cancel", "", "cancel a job ID (client mode)")
	flag.BoolVar(&client.metrics, "metrics", false, "print the daemon's metrics (client mode)")
	flag.DurationVar(&client.timeout, "timeout", 10*time.Second, "connect and response-header timeout (client mode)")
	flag.IntVar(&client.retries, "retries", 4, "connection-failure retries per request, with backoff (client mode)")
	flag.Parse()

	if client.server != "" {
		client.seed = *seed
		os.Exit(runClient(client))
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tlbsim [flags] prog.s   (use - for stdin)")
		os.Exit(2)
	}
	src, err := readSource(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(src)
	if err != nil {
		fatal(err)
	}

	machine, err := cpu.NewSystem(*memLatency, func(w tlb.Walker) (tlb.TLB, error) {
		switch *design {
		case "sa":
			return tlb.NewSetAssoc(*entries, *ways, w)
		case "fa":
			return tlb.NewFullyAssoc(*entries, w)
		case "1e":
			return tlb.NewSingleEntry(w)
		case "sp":
			vw := *victimWays
			if vw == 0 {
				vw = *ways / 2
			}
			return tlb.NewSP(*entries, *ways, vw, w)
		case "rf":
			return tlb.NewRF(*entries, *ways, w, *seed)
		case "ri":
			return tlb.NewRandIdx(*entries, *ways, w, *seed, *rekeyFills)
		case "fs":
			return tlb.NewFlushOnSwitch(*entries, *ways, w)
		default:
			return nil, fmt.Errorf("unknown TLB design %q", *design)
		}
	})
	if err != nil {
		fatal(err)
	}
	if *varFlush {
		cfg := cpu.DefaultConfig
		cfg.VariableFlushTiming = true
		machine = cpu.New(machine.TLB, machine.PT, machine.Mem, cfg)
	}
	// Map the program for the attacker (0) and victim (1) process IDs the
	// benchmark dialect uses.
	if err := machine.Load(prog, []tlb.ASID{0, 1}); err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code, err := machine.RunCtx(ctx, *maxInstr)
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			fmt.Fprintf(os.Stderr, "tlbsim: interrupted after %d instructions\n", machine.Instret())
			os.Exit(130)
		case errors.Is(err, cpu.ErrFuelExhausted):
			fatal(fmt.Errorf("%w after %d instructions (raise -max-instr)", err, machine.Instret()))
		default:
			fatal(err)
		}
	}

	if code == 0 {
		fmt.Println("exit: PASS (0)")
	} else {
		fmt.Printf("exit: FAIL (%d)\n", code)
	}
	fmt.Printf("instructions: %d   cycles: %d   IPC: %.3f\n",
		machine.Instret(), machine.Cycles(),
		float64(machine.Instret())/float64(machine.Cycles()))
	st := machine.TLB.Stats()
	fmt.Printf("%s: lookups %d, hits %d, misses %d (%.1f%%), random fills %d\n",
		machine.TLB.Name(), st.Lookups, st.Hits, st.Misses, 100*st.MissRate(), st.RandomFills)
	fmt.Println("registers (non-zero):")
	for i := 1; i < 32; i++ {
		if v := machine.Reg(i); v != 0 {
			fmt.Printf("  x%-2d = %d (%#x)\n", i, v, v)
		}
	}
	if code != 0 {
		os.Exit(1)
	}
}

func readSource(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tlbsim:", err)
	os.Exit(1)
}
