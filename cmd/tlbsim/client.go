package main

// This file is the tlbserved client mode ("tlbctl"): with -server set,
// tlbsim talks to a running tlbserved daemon instead of simulating locally —
// submit a campaign and stream its progress, attach to or cancel an existing
// job, or dump the daemon's metrics.
//
// The client never trusts the daemon to be healthy: every request carries a
// connect timeout and a response-header timeout (so an unresponsive or
// stalled daemon fails the call instead of hanging it forever), and
// connection-level failures — refused, reset, timed out before headers —
// are retried a bounded number of times with exponential backoff, since a
// daemon mid-restart comes back on the same address within moments.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"securetlb/internal/job"
	"securetlb/internal/serve"
)

// clientBackoffBase is the first retry delay; each attempt doubles it.
// A variable so tests can compress the schedule.
var clientBackoffBase = 250 * time.Millisecond

// clientFlags are the -server mode's inputs, bound in main.
type clientFlags struct {
	server     string
	campaign   string
	design     string
	trials     int
	extended   bool
	invariants bool
	secure     bool
	decrypts   int
	seed       uint64
	jobID      string
	cancelID   string
	metrics    bool
	timeout    time.Duration // connect + response-header timeout
	retries    int           // connection-failure retries per request
}

// httpClient builds the timeout-bounded transport. No overall request
// timeout is set: a campaign's NDJSON stream legitimately lasts as long as
// the campaign, so only the dial and the wait for headers are bounded.
func (f clientFlags) httpClient() *http.Client {
	timeout := f.timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &http.Client{
		Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: timeout}).DialContext,
			ResponseHeaderTimeout: timeout,
		},
	}
}

// do issues req-building function's request, retrying connection-level
// failures (refused, reset, header timeout) up to f.retries times with
// exponential backoff. The builder is called per attempt so request bodies
// are fresh.
func (f clientFlags) do(hc *http.Client, build func() (*http.Request, error)) (*http.Response, error) {
	var lastErr error
	delay := clientBackoffBase
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := hc.Do(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if attempt >= f.retries {
			break
		}
		fmt.Fprintf(os.Stderr, "tlbsim: %v; retrying in %s (%d/%d)\n", err, delay, attempt+1, f.retries)
		time.Sleep(delay)
		delay *= 2
	}
	return nil, fmt.Errorf("after %d attempt(s): %w", f.retries+1, lastErr)
}

func (f clientFlags) get(hc *http.Client, url string) (*http.Response, error) {
	return f.do(hc, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url, nil)
	})
}

// runClient executes one client operation and returns the process exit code.
func runClient(f clientFlags) int {
	base := strings.TrimRight(f.server, "/")
	switch {
	case f.metrics:
		return clientGet(f, base+"/metrics")
	case f.cancelID != "":
		return clientCancel(f, base, f.cancelID)
	case f.jobID != "":
		return clientAttach(f, base, f.jobID)
	case f.campaign != "":
		return clientSubmit(f, base)
	default:
		fmt.Fprintln(os.Stderr, "tlbsim: -server needs one of -campaign, -job, -cancel or -metrics")
		return 2
	}
}

// retryAfter parses a 429/503 response's Retry-After header as delay
// seconds. ok=false when the header is absent or unusable (the HTTP-date
// form included — the internal schedule is a saner fallback than clock
// math against an arbitrary server clock).
func retryAfter(resp *http.Response) (time.Duration, bool) {
	v := strings.TrimSpace(resp.Header.Get("Retry-After"))
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// clientSubmit posts the campaign spec, reports how the daemon served it
// (fresh, coalesced or cached), then attaches to the job. A 429/503 — the
// daemon applying backpressure — is retried within the same bounded
// schedule as a connection failure, waiting the server's Retry-After
// seconds when it names them (the daemon knows its drain and admission
// state better than our blind exponential guess does).
func clientSubmit(f clientFlags, base string) int {
	spec := job.Spec{
		Kind:       f.campaign,
		Design:     f.design,
		Trials:     f.trials,
		Extended:   f.extended,
		Invariants: f.invariants,
		Secure:     f.secure,
		Decrypts:   f.decrypts,
		Seed:       f.seed,
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		return clientFatal(err)
	}
	hc := f.httpClient()
	var sub serve.SubmitResponse
	delay := clientBackoffBase
	for attempt := 0; ; attempt++ {
		resp, err := f.do(hc, func() (*http.Request, error) {
			req, err := http.NewRequest(http.MethodPost, base+"/jobs", bytes.NewReader(raw))
			if err != nil {
				return nil, err
			}
			req.Header.Set("Content-Type", "application/json")
			return req, nil
		})
		if err != nil {
			return clientFatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return clientFatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable {
			if attempt >= f.retries {
				return clientFatal(fmt.Errorf("submit rejected (%s): %s", resp.Status, strings.TrimSpace(string(body))))
			}
			wait := delay
			if server, ok := retryAfter(resp); ok {
				wait = server
			}
			fmt.Fprintf(os.Stderr, "tlbsim: daemon busy (%s); retrying in %s (%d/%d)\n",
				resp.Status, wait, attempt+1, f.retries)
			time.Sleep(wait)
			delay *= 2
			continue
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			return clientFatal(fmt.Errorf("submit rejected (%s): %s", resp.Status, strings.TrimSpace(string(body))))
		}
		if err := json.Unmarshal(body, &sub); err != nil {
			return clientFatal(err)
		}
		break
	}
	switch {
	case sub.Cached:
		fmt.Fprintf(os.Stderr, "tlbsim: job %s served from cache\n", sub.ID)
	case sub.Coalesced:
		fmt.Fprintf(os.Stderr, "tlbsim: job %s already in flight, attaching\n", sub.ID)
	default:
		fmt.Fprintf(os.Stderr, "tlbsim: job %s submitted\n", sub.ID)
	}
	return clientAttach(f, base, sub.ID)
}

// clientAttach follows a job's NDJSON stream — progress to stderr — and
// prints the result's campaign output to stdout. Exit code mirrors the
// job's fate: 0 done, 1 failed or canceled. A stream ending on a hand-off
// (the serving node lost the job's lease to a peer) is reattached within
// the retry budget: the daemon then follows the job's shared record, so
// the same endpoint keeps working wherever the job runs next.
func clientAttach(f clientFlags, base, id string) int {
	hc := f.httpClient()
	for attempt := 0; ; attempt++ {
		code, handedOff := clientFollow(f, hc, base, id)
		if !handedOff || attempt >= f.retries {
			return code
		}
		fmt.Fprintf(os.Stderr, "tlbsim: job %s: reattaching after hand-off (%d/%d)\n", id, attempt+1, f.retries)
	}
}

// clientFollow consumes one stream connection. handedOff=true means the
// stream ended because the job moved to another node and the caller should
// reattach.
func clientFollow(f clientFlags, hc *http.Client, base, id string) (code int, handedOff bool) {
	resp, err := f.get(hc, base+"/jobs/"+id+"/stream")
	if err != nil {
		return clientFatal(err), false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return clientFatal(fmt.Errorf("stream (%s): %s", resp.Status, strings.TrimSpace(string(body)))), false
	}
	var last job.State
	sawHandoff := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		var ev job.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return clientFatal(fmt.Errorf("bad stream event: %w", err)), false
		}
		switch ev.Type {
		case "state":
			last = ev.State
			if ev.Error != "" {
				fmt.Fprintf(os.Stderr, "tlbsim: job %s: %s (%s)\n", id, ev.State, ev.Error)
			} else {
				fmt.Fprintf(os.Stderr, "tlbsim: job %s: %s\n", id, ev.State)
			}
		case "progress":
			fmt.Fprintf(os.Stderr, "tlbsim: job %s: %d units done\n", id, ev.Units)
		case "retry":
			fmt.Fprintf(os.Stderr, "tlbsim: job %s: transient failure, retry %d scheduled (%s)\n", id, ev.Attempt, ev.Error)
		case "stall":
			fmt.Fprintf(os.Stderr, "tlbsim: job %s: progress stalled, re-parked (stall %d)\n", id, ev.Attempt)
		case "handoff":
			sawHandoff = true
			fmt.Fprintf(os.Stderr, "tlbsim: job %s: handed off to another node (handoff %d)\n", id, ev.Attempt)
		case "result":
			var res serve.Result
			if err := json.Unmarshal(ev.Result, &res); err != nil {
				return clientFatal(fmt.Errorf("bad result payload: %w", err)), false
			}
			fmt.Print(res.Output)
			if res.Quarantined > 0 {
				fmt.Fprintf(os.Stderr, "tlbsim: %d trials quarantined\n", res.Quarantined)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return clientFatal(err), false
	}
	if last == job.StateDone {
		return 0, false
	}
	if sawHandoff && !last.Terminal() {
		return 1, true
	}
	fmt.Fprintf(os.Stderr, "tlbsim: job %s ended %s\n", id, last)
	return 1, false
}

func clientCancel(f clientFlags, base, id string) int {
	resp, err := f.do(f.httpClient(), func() (*http.Request, error) {
		return http.NewRequest(http.MethodDelete, base+"/jobs/"+id, nil)
	})
	if err != nil {
		return clientFatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return clientFatal(fmt.Errorf("cancel (%s): %s", resp.Status, strings.TrimSpace(string(body))))
	}
	fmt.Fprintf(os.Stderr, "tlbsim: job %s cancel requested\n", id)
	return 0
}

func clientGet(f clientFlags, url string) int {
	resp, err := f.get(f.httpClient(), url)
	if err != nil {
		return clientFatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return clientFatal(fmt.Errorf("GET %s: %s", url, resp.Status))
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		return clientFatal(err)
	}
	return 0
}

func clientFatal(err error) int {
	fmt.Fprintln(os.Stderr, "tlbsim:", err)
	return 1
}
