package main

// This file is the tlbserved client mode ("tlbctl"): with -server set,
// tlbsim talks to a running tlbserved daemon instead of simulating locally —
// submit a campaign and stream its progress, attach to or cancel an existing
// job, or dump the daemon's metrics.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"securetlb/internal/job"
	"securetlb/internal/serve"
)

// clientFlags are the -server mode's inputs, bound in main.
type clientFlags struct {
	server     string
	campaign   string
	design     string
	trials     int
	extended   bool
	invariants bool
	secure     bool
	decrypts   int
	seed       uint64
	jobID      string
	cancelID   string
	metrics    bool
}

// runClient executes one client operation and returns the process exit code.
func runClient(f clientFlags) int {
	base := strings.TrimRight(f.server, "/")
	switch {
	case f.metrics:
		return clientGet(base + "/metrics")
	case f.cancelID != "":
		return clientCancel(base, f.cancelID)
	case f.jobID != "":
		return clientAttach(base, f.jobID)
	case f.campaign != "":
		return clientSubmit(base, f)
	default:
		fmt.Fprintln(os.Stderr, "tlbsim: -server needs one of -campaign, -job, -cancel or -metrics")
		return 2
	}
}

// clientSubmit posts the campaign spec, reports how the daemon served it
// (fresh, coalesced or cached), then attaches to the job.
func clientSubmit(base string, f clientFlags) int {
	spec := job.Spec{
		Kind:       f.campaign,
		Design:     f.design,
		Trials:     f.trials,
		Extended:   f.extended,
		Invariants: f.invariants,
		Secure:     f.secure,
		Decrypts:   f.decrypts,
		Seed:       f.seed,
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		return clientFatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		return clientFatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return clientFatal(err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return clientFatal(fmt.Errorf("submit rejected (%s): %s", resp.Status, strings.TrimSpace(string(body))))
	}
	var sub serve.SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		return clientFatal(err)
	}
	switch {
	case sub.Cached:
		fmt.Fprintf(os.Stderr, "tlbsim: job %s served from cache\n", sub.ID)
	case sub.Coalesced:
		fmt.Fprintf(os.Stderr, "tlbsim: job %s already in flight, attaching\n", sub.ID)
	default:
		fmt.Fprintf(os.Stderr, "tlbsim: job %s submitted\n", sub.ID)
	}
	return clientAttach(base, sub.ID)
}

// clientAttach follows a job's NDJSON stream — progress to stderr — and
// prints the result's campaign output to stdout. Exit code mirrors the
// job's fate: 0 done, 1 failed or canceled.
func clientAttach(base, id string) int {
	resp, err := http.Get(base + "/jobs/" + id + "/stream")
	if err != nil {
		return clientFatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return clientFatal(fmt.Errorf("stream (%s): %s", resp.Status, strings.TrimSpace(string(body))))
	}
	var last job.State
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		var ev job.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return clientFatal(fmt.Errorf("bad stream event: %w", err))
		}
		switch ev.Type {
		case "state":
			last = ev.State
			if ev.Error != "" {
				fmt.Fprintf(os.Stderr, "tlbsim: job %s: %s (%s)\n", id, ev.State, ev.Error)
			} else {
				fmt.Fprintf(os.Stderr, "tlbsim: job %s: %s\n", id, ev.State)
			}
		case "progress":
			fmt.Fprintf(os.Stderr, "tlbsim: job %s: %d units done\n", id, ev.Units)
		case "result":
			var res serve.Result
			if err := json.Unmarshal(ev.Result, &res); err != nil {
				return clientFatal(fmt.Errorf("bad result payload: %w", err))
			}
			fmt.Print(res.Output)
			if res.Quarantined > 0 {
				fmt.Fprintf(os.Stderr, "tlbsim: %d trials quarantined\n", res.Quarantined)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return clientFatal(err)
	}
	if last == job.StateDone {
		return 0
	}
	fmt.Fprintf(os.Stderr, "tlbsim: job %s ended %s\n", id, last)
	return 1
}

func clientCancel(base, id string) int {
	req, err := http.NewRequest(http.MethodDelete, base+"/jobs/"+id, nil)
	if err != nil {
		return clientFatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return clientFatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return clientFatal(fmt.Errorf("cancel (%s): %s", resp.Status, strings.TrimSpace(string(body))))
	}
	fmt.Fprintf(os.Stderr, "tlbsim: job %s cancel requested\n", id)
	return 0
}

func clientGet(url string) int {
	resp, err := http.Get(url)
	if err != nil {
		return clientFatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return clientFatal(fmt.Errorf("GET %s: %s", url, resp.Status))
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		return clientFatal(err)
	}
	return 0
}

func clientFatal(err error) int {
	fmt.Fprintln(os.Stderr, "tlbsim:", err)
	return 1
}
