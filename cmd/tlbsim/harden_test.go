package main

// Tests for the client mode's robustness: a stalled or absent daemon fails
// fast within the bounded retry schedule instead of hanging the client.

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// shrinkBackoff compresses the client's retry schedule for the test.
func shrinkBackoff(t *testing.T) {
	t.Helper()
	old := clientBackoffBase
	clientBackoffBase = time.Millisecond
	t.Cleanup(func() { clientBackoffBase = old })
}

// TestClientStalledListenerTimesOut: a listener that accepts connections
// but never writes headers — a wedged daemon — must not hang the client:
// every attempt times out at the response-header deadline, each retry
// dials a fresh connection, and the client gives up after its budget.
func TestClientStalledListenerTimesOut(t *testing.T) {
	shrinkBackoff(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var accepted atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepted.Add(1)
			defer conn.Close() // hold the connection open, write nothing
		}
	}()

	const retries = 2
	flags := clientFlags{
		server:  "http://" + ln.Addr().String(),
		metrics: true,
		timeout: 50 * time.Millisecond,
		retries: retries,
	}
	start := time.Now()
	if code := runClient(flags); code != 1 {
		t.Errorf("client exit = %d against a stalled daemon, want 1", code)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("client took %v to fail, the timeout is not biting", elapsed)
	}
	if got := accepted.Load(); got != retries+1 {
		t.Errorf("stalled listener saw %d connections, want %d (1 try + %d retries)",
			got, retries+1, retries)
	}
}

// TestClientRefusedConnectionRetriesThenFails: nothing listening at all —
// the bounded schedule still applies, and the failure names the attempts.
func TestClientRefusedConnectionRetriesThenFails(t *testing.T) {
	shrinkBackoff(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // the port is now dead

	flags := clientFlags{
		server:  "http://" + addr,
		metrics: true,
		timeout: 50 * time.Millisecond,
		retries: 1,
	}
	if code := runClient(flags); code != 1 {
		t.Errorf("client exit = %d against a dead address, want 1", code)
	}
}

// TestClientRetriesBackpressuredSubmit: a 429 with Retry-After is retried
// within the same schedule; once the daemon admits the job the submission
// succeeds end to end.
func TestClientRetriesBackpressuredSubmit(t *testing.T) {
	shrinkBackoff(t)
	upstream := startServer(t)
	var rejections atomic.Int64
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && rejections.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"job: queue is full"}`, http.StatusTooManyRequests)
			return
		}
		req, err := http.NewRequest(r.Method, upstream+r.URL.Path, r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	defer proxy.Close()

	flags := clientFlags{
		server:   proxy.URL,
		campaign: "secbench",
		design:   "sa",
		trials:   2,
		timeout:  5 * time.Second,
		retries:  4,
	}
	out := captureStdout(t, func() {
		if code := runClient(flags); code != 0 {
			t.Errorf("client exit = %d through backpressure, want 0", code)
		}
	})
	if rejections.Load() <= 2 {
		t.Errorf("proxy rejected %d submits, the retry path never ran", rejections.Load())
	}
	if out == "" {
		t.Error("no campaign output reached stdout after the retried submit")
	}
}

// TestClientHonorsRetryAfter: when a 429 names Retry-After seconds, the
// client waits that long instead of its internal backoff step. The
// internal schedule is compressed to 1ms, so the observed ≥1s gap between
// the rejection and the retry can only come from the header.
func TestClientHonorsRetryAfter(t *testing.T) {
	shrinkBackoff(t)
	var submits atomic.Int64
	var rejectedAt, retriedAt time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost:
			if submits.Add(1) == 1 {
				rejectedAt = time.Now()
				w.Header().Set("Retry-After", "1")
				http.Error(w, `{"error":"job: queue is full"}`, http.StatusTooManyRequests)
				return
			}
			retriedAt = time.Now()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusAccepted)
			io.WriteString(w, `{"id":"feedfeedfeedfeed","state":"pending"}`)
		default: // the stream attach that follows the accepted submit
			w.Header().Set("Content-Type", "application/x-ndjson")
			io.WriteString(w, `{"type":"result","result":{"kind":"secbench","output":"ok\n"}}`+"\n")
			io.WriteString(w, `{"type":"state","state":"done"}`+"\n")
		}
	}))
	defer srv.Close()

	flags := clientFlags{
		server:   srv.URL,
		campaign: "secbench",
		design:   "sa",
		trials:   2,
		timeout:  5 * time.Second,
		retries:  3,
	}
	out := captureStdout(t, func() {
		if code := runClient(flags); code != 0 {
			t.Errorf("client exit = %d, want 0", code)
		}
	})
	if got := submits.Load(); got != 2 {
		t.Fatalf("server saw %d submits, want 2 (reject, then retry)", got)
	}
	if wait := retriedAt.Sub(rejectedAt); wait < time.Second {
		t.Errorf("client retried after %v, want >= 1s (the server's Retry-After)", wait)
	}
	if out != "ok\n" {
		t.Errorf("campaign output = %q, want %q", out, "ok\n")
	}
}

// TestRetryAfterParsing: only a plain non-negative seconds value is used;
// anything else falls back to the internal schedule.
func TestRetryAfterParsing(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
		ok     bool
	}{
		{"", 0, false},
		{"2", 2 * time.Second, true},
		{"0", 0, true},
		{"-1", 0, false},
		{"soon", 0, false},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0, false},
	}
	for _, c := range cases {
		resp := &http.Response{Header: http.Header{}}
		if c.header != "" {
			resp.Header.Set("Retry-After", c.header)
		}
		got, ok := retryAfter(resp)
		if got != c.want || ok != c.ok {
			t.Errorf("retryAfter(%q) = (%v, %v), want (%v, %v)", c.header, got, ok, c.want, c.ok)
		}
	}
}
