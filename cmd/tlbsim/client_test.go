package main

import (
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"securetlb/internal/job"
	"securetlb/internal/pool"
	"securetlb/internal/serve"
)

// startServer runs a real tlbserved stack behind httptest for the client to
// talk to.
func startServer(t *testing.T) string {
	t.Helper()
	runner := &serve.CampaignRunner{Dir: t.TempDir(), Pool: pool.New(2)}
	q, err := job.Open(runner.Dir, runner)
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	ts := httptest.NewServer(serve.New(q, runner).Handler())
	t.Cleanup(func() {
		ts.Close()
		q.Close()
	})
	return ts.URL
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns what
// it wrote.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string, 1)
	go func() {
		raw, _ := io.ReadAll(r)
		done <- string(raw)
	}()
	f()
	w.Close()
	return <-done
}

// TestClientSubmitStreamsResult: the client mode submits a campaign, follows
// the stream and prints the campaign tables; a second submission of the same
// spec is served from cache with identical output.
func TestClientSubmitStreamsResult(t *testing.T) {
	url := startServer(t)
	flags := clientFlags{
		server:   url,
		campaign: "secbench",
		design:   "sa",
		trials:   2,
		seed:     1,
	}
	var code int
	first := captureStdout(t, func() { code = runClient(flags) })
	if code != 0 {
		t.Fatalf("client exit code = %d", code)
	}
	if !strings.Contains(first, "Table 4") || !strings.Contains(first, "SA TLB") {
		t.Errorf("client output missing campaign table:\n%s", first)
	}
	second := captureStdout(t, func() { code = runClient(flags) })
	if code != 0 {
		t.Fatalf("cached client exit code = %d", code)
	}
	if first != second {
		t.Error("cached run's output differs from the original")
	}
}

func TestClientMetrics(t *testing.T) {
	url := startServer(t)
	var code int
	out := captureStdout(t, func() {
		code = runClient(clientFlags{server: url, metrics: true})
	})
	if code != 0 {
		t.Fatalf("client exit code = %d", code)
	}
	if !strings.Contains(out, "tlbserved_pool_workers 2") {
		t.Errorf("metrics output missing pool gauge:\n%s", out)
	}
}

func TestClientRejectsBadUsage(t *testing.T) {
	if code := runClient(clientFlags{server: "http://127.0.0.1:1"}); code != 2 {
		t.Errorf("no operation selected: exit = %d, want 2", code)
	}
	url := startServer(t)
	if code := runClient(clientFlags{server: url, campaign: "areabench"}); code != 1 {
		t.Errorf("bad campaign kind: exit = %d, want 1", code)
	}
	if code := runClient(clientFlags{server: url, jobID: "nope"}); code != 1 {
		t.Errorf("unknown job attach: exit = %d, want 1", code)
	}
}
