package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"securetlb/internal/job"
)

// buildDaemon compiles the tlbserved binary into a temp dir once per test.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tlbserved")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running tlbserved process under test.
type daemon struct {
	cmd  *exec.Cmd
	base string
}

// startDaemon launches the binary against dir and waits for the address
// file to learn its base URL.
func startDaemon(t *testing.T, bin, dir string) *daemon {
	t.Helper()
	// A restart over a used data dir must not race us onto the previous
	// daemon's stale address.
	addrPath := filepath.Join(dir, addrFile)
	os.Remove(addrPath)
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data", dir, "-parallel", "2")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		raw, err := os.ReadFile(addrPath)
		if err == nil && len(raw) > 0 {
			return &daemon{cmd: cmd, base: "http://" + strings.TrimSpace(string(raw))}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("daemon never wrote its address file")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// stop SIGTERMs the daemon and asserts a clean (exit 0) drain.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly: %v", err)
	}
}

func (d *daemon) submit(t *testing.T, spec string) string {
	t.Helper()
	resp, err := http.Post(d.base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	return sub.ID
}

func (d *daemon) waitDone(t *testing.T, id string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(d.base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var j job.Job
		err = json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch j.State {
		case job.StateDone:
			return
		case job.StateFailed:
			t.Fatalf("job failed: %s", j.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after %s", j.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (d *daemon) result(t *testing.T, id string) []byte {
	t.Helper()
	resp, err := http.Get(d.base + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", resp.StatusCode, raw)
	}
	return raw
}

// TestSigtermRestartBitIdentical is the daemon's end-to-end acceptance
// check: SIGTERM mid-campaign, restart over the same data directory, and the
// resumed job's result is byte-identical to one computed by an uninterrupted
// daemon.
func TestSigtermRestartBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildDaemon(t)
	// Sized like cmd/secbench's interrupt test: a few seconds of work, so
	// the SIGTERM lands while most units are outstanding.
	const spec = `{"kind":"secbench","design":"rf","trials":20000}`

	// Reference: an uninterrupted daemon runs the campaign to completion.
	ref := startDaemon(t, bin, t.TempDir())
	refID := ref.submit(t, spec)
	ref.waitDone(t, refID, 5*time.Minute)
	want := ref.result(t, refID)
	ref.stop(t)

	// Interrupted: SIGTERM as soon as the job's first checkpoint flush
	// lands, then assert the drain parked it for the next daemon.
	dir := t.TempDir()
	d := startDaemon(t, bin, dir)
	id := d.submit(t, spec)
	if id != refID {
		t.Fatalf("content address differs across daemons: %s vs %s", id, refID)
	}
	ckPath := filepath.Join(dir, id+".ckpt.json")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			d.cmd.Process.Kill()
			t.Fatal("no checkpoint flush within 60s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	d.stop(t)

	raw, err := os.ReadFile(filepath.Join(dir, id+".job.json"))
	if err != nil {
		t.Fatalf("job record missing after drain: %v", err)
	}
	var parked job.Job
	if err := json.Unmarshal(raw, &parked); err != nil {
		t.Fatal(err)
	}
	if parked.State != job.StatePending {
		t.Fatalf("drained job parked as %s, want pending", parked.State)
	}

	// Restart over the same directory: the job resumes from its checkpoint
	// and completes without a new submission.
	d2 := startDaemon(t, bin, dir)
	d2.waitDone(t, id, 5*time.Minute)
	got := d2.result(t, id)
	if !bytes.Equal(got, want) {
		t.Errorf("resumed result differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
	// The resumed execution must not have restarted from scratch: the
	// record counts two runner starts for one submission.
	var done job.Job
	if err := json.Unmarshal(mustRead(t, filepath.Join(dir, id+".job.json")), &done); err != nil {
		t.Fatal(err)
	}
	if done.Executions != 2 {
		t.Errorf("executions across restart = %d, want 2", done.Executions)
	}
	if _, err := os.Stat(ckPath); !os.IsNotExist(err) {
		t.Errorf("checkpoint not removed after completion: %v", err)
	}
	d2.stop(t)
}

// TestDrainRejectsLateSubmissions: a daemon with no work SIGTERMs cleanly,
// and its metrics endpoint serves while it is up.
func TestMetricsAndCleanShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildDaemon(t)
	d := startDaemon(t, bin, t.TempDir())
	resp, err := http.Get(d.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"tlbserved_submissions_total 0", "tlbserved_pool_workers 2"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics missing %q:\n%s", want, raw)
		}
	}
	d.stop(t)
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
