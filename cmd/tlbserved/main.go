// Command tlbserved is the campaign-serving daemon: a long-lived HTTP
// service that runs secbench/perfbench campaigns from a durable job queue.
// Identical requests coalesce onto one execution, completed results are
// cached by the campaign's content fingerprint, progress streams as NDJSON,
// and every job checkpoints its work units — a daemon killed mid-campaign
// resumes on restart and finishes bit-identical to an uninterrupted run.
//
// Usage:
//
//	tlbserved -addr 127.0.0.1:8321 -data ./tlbserved-data -parallel 8
//
// The resolved listen address is printed to stderr and written to
// <data>/tlbserved.addr so scripted clients (and the serve-smoke make
// target) can find a dynamically chosen port. SIGINT/SIGTERM trigger a
// graceful drain: the listener stops, live jobs flush their checkpoints and
// park back in the queue, and the daemon exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"securetlb/internal/job"
	"securetlb/internal/pool"
	"securetlb/internal/serve"
)

// addrFile, under the data directory, records the daemon's resolved listen
// address.
const addrFile = "tlbserved.addr"

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
	data := flag.String("data", "tlbserved-data", "durable directory for job records and checkpoints")
	parallel := flag.Int("parallel", 0, "worker pool size shared by all jobs (0 = GOMAXPROCS)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: tlbserved [-addr host:port] [-data dir] [-parallel n]")
		os.Exit(2)
	}
	if err := run(*addr, *data, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "tlbserved:", err)
		os.Exit(1)
	}
}

func run(addr, data string, parallel int) error {
	runner := &serve.CampaignRunner{Dir: data, Pool: pool.New(parallel)}
	queue, err := job.Open(data, runner)
	if err != nil {
		return err
	}
	if n := queue.Metrics().Recovered; n > 0 {
		fmt.Fprintf(os.Stderr, "tlbserved: resuming %d interrupted job(s)\n", n)
	}
	queue.Start()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	resolved := ln.Addr().String()
	if err := os.WriteFile(filepath.Join(data, addrFile), []byte(resolved+"\n"), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tlbserved: listening on %s (pool %d, data %s)\n",
		resolved, runner.Pool.Size(), data)

	server := &http.Server{Handler: serve.New(queue, runner).Handler()}
	errc := make(chan error, 1)
	go func() { errc <- server.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		queue.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain. The queue goes first: live jobs park (started trials
	// finish, checkpoints flush) and their subscriber channels close, which
	// ends any open NDJSON streams — so the HTTP shutdown that follows has
	// no long-lived connections left to wait for. Requests arriving during
	// the drain are answered (submissions with 503).
	fmt.Fprintln(os.Stderr, "tlbserved: shutting down, draining jobs")
	queue.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "tlbserved: shutdown:", err)
	}
	fmt.Fprintln(os.Stderr, "tlbserved: drained")
	return nil
}
