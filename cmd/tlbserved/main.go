// Command tlbserved is the campaign-serving daemon: a long-lived HTTP
// service that runs secbench/perfbench campaigns from a durable job queue.
// Identical requests coalesce onto one execution, completed results are
// cached by the campaign's content fingerprint, progress streams as NDJSON,
// and every job checkpoints its work units — a daemon killed mid-campaign
// resumes on restart and finishes bit-identical to an uninterrupted run.
//
// Usage:
//
//	tlbserved -addr 127.0.0.1:8321 -data ./tlbserved-data -parallel 8
//
// The resolved listen address is printed to stderr and written to
// <data>/tlbserved.addr so scripted clients (and the serve-smoke make
// target) can find a dynamically chosen port. SIGINT/SIGTERM trigger a
// graceful drain: the listener stops, live jobs flush their checkpoints and
// park back in the queue, and the daemon exits 0.
//
// The daemon is hardened for hostile conditions: admission control bounds
// the live-job depth (-max-pending) and each client's in-flight jobs
// (-max-per-client), transiently failed jobs retry with exponential
// backoff within a persisted budget (-retries), a watchdog re-parks jobs
// whose progress stalls (-stall-timeout), and a corrupt job record found
// at startup is quarantined to <id>.job.json.corrupt instead of refusing
// to serve. -inject arms one seeded service-layer fault site
// (job-write-fail, job-rename-fail, job-torn-write, or in cluster mode
// lease-renew-fail, lease-expired-mid-write, stale-epoch-write) for the
// chaos harness's differential matrix.
//
// Cluster mode (-node-id and/or -peers) runs several daemons over one
// shared data directory as a fault-tolerant cluster: each running job is
// owned via a renewed lease record, an expired lease (its node died or
// wedged) is handed off to a peer, and a fencing epoch refuses a
// resurrected node's stale writes. Submissions route to an owner node by
// the spec's content address so coalescing and result caching stay
// global; every node answers reads from the shared directory. The node's
// identity defaults to its resolved listen address, which is what peers
// use to reach it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"securetlb/internal/faultinject"
	"securetlb/internal/job"
	"securetlb/internal/pool"
	"securetlb/internal/serve"
)

// addrFile, under the data directory, records the daemon's resolved listen
// address.
const addrFile = "tlbserved.addr"

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
	data := flag.String("data", "tlbserved-data", "durable directory for job records and checkpoints")
	parallel := flag.Int("parallel", 0, "worker pool size shared by all jobs (0 = GOMAXPROCS)")
	lim := job.Limits{}
	flag.IntVar(&lim.MaxPending, "max-pending", 256, "live (pending+running) job depth before submissions get 429 (0 = unbounded)")
	flag.IntVar(&lim.MaxPerClient, "max-per-client", 16, "live jobs one client may hold before 429 (0 = unbounded)")
	flag.IntVar(&lim.RetryBudget, "retries", 3, "transient-failure retries per job, persisted across restarts (0 = fail fast)")
	flag.DurationVar(&lim.RetryBase, "retry-base", 100*time.Millisecond, "first retry backoff step (doubles per attempt, capped at 5s, jittered)")
	flag.DurationVar(&lim.StallTimeout, "stall-timeout", 2*time.Minute, "re-park a running job whose progress stalls this long (0 = no watchdog)")
	inject := flag.String("inject", "", "arm one seeded service fault site: job-write-fail, job-rename-fail, job-torn-write, lease-renew-fail, lease-expired-mid-write or stale-epoch-write")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for -inject")
	nodeID := flag.String("node-id", "", "cluster identity for this node (default: the resolved listen address); setting it or -peers enables cluster mode")
	peers := flag.String("peers", "", "comma-separated peer node addresses sharing this data directory (enables cluster mode)")
	flag.DurationVar(&lim.Cluster.LeaseTTL, "lease-ttl", 3*time.Second, "cluster job-lease TTL: a node silent this long is presumed dead and its jobs hand off")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: tlbserved [-addr host:port] [-data dir] [-parallel n] [limit flags]")
		os.Exit(2)
	}
	if *inject != "" {
		site, err := faultinject.ParseServiceSite(*inject)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlbserved:", err)
			os.Exit(2)
		}
		in, err := faultinject.NewService(site, *faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlbserved:", err)
			os.Exit(2)
		}
		lim.PersistHook = &job.PersistHook{OnWrite: in.OnWrite, OnRename: in.OnRename, OnLease: in.OnLease}
		fmt.Fprintf(os.Stderr, "tlbserved: armed fault site %s (seed %d)\n", site, *faultSeed)
	}
	if err := run(*addr, *data, *parallel, lim, *nodeID, *peers); err != nil {
		fmt.Fprintln(os.Stderr, "tlbserved:", err)
		os.Exit(1)
	}
}

func run(addr, data string, parallel int, lim job.Limits, nodeID, peersCSV string) error {
	// The listener comes up before the queue opens: a cluster node's
	// identity defaults to its resolved address, and the queue needs that
	// identity to claim leases during recovery.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	resolved := ln.Addr().String()
	clustered := nodeID != "" || peersCSV != ""
	if clustered {
		if nodeID == "" {
			nodeID = resolved
		}
		lim.Cluster.Node = nodeID
	}

	runner := &serve.CampaignRunner{Dir: data, Pool: pool.New(parallel)}
	queue, err := job.OpenLimits(data, runner, lim)
	if err != nil {
		ln.Close()
		return err
	}
	if n := queue.Metrics().Quarantined; n > 0 {
		fmt.Fprintf(os.Stderr, "tlbserved: quarantined %d corrupt job record(s)\n", n)
	}
	if n := queue.Metrics().Recovered; n > 0 {
		fmt.Fprintf(os.Stderr, "tlbserved: resuming %d interrupted job(s)\n", n)
	}
	queue.Start()

	if err := os.WriteFile(filepath.Join(data, addrFile), []byte(resolved+"\n"), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tlbserved: listening on %s (pool %d, data %s)\n",
		resolved, runner.Pool.Size(), data)

	api := serve.New(queue, runner)
	if clustered {
		var peerList []string
		for _, p := range strings.Split(peersCSV, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		api.EnableCluster(serve.Cluster{Node: nodeID, Peers: peerList})
		fmt.Fprintf(os.Stderr, "tlbserved: cluster node %s (%d peer(s), lease TTL %s)\n",
			nodeID, len(peerList), lim.Cluster.LeaseTTL)
	}
	server := &http.Server{Handler: api.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- server.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		queue.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain. The queue goes first: live jobs park (started trials
	// finish, checkpoints flush) and their subscriber channels close, which
	// ends any open NDJSON streams — so the HTTP shutdown that follows has
	// no long-lived connections left to wait for. Requests arriving during
	// the drain are answered (submissions with 503).
	fmt.Fprintln(os.Stderr, "tlbserved: shutting down, draining jobs")
	queue.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "tlbserved: shutdown:", err)
	}
	fmt.Fprintln(os.Stderr, "tlbserved: drained")
	return nil
}
