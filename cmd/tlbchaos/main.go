// Command tlbchaos is the service-layer chaos harness: it drives a fleet
// of concurrent clients against a real tlbserved daemon while killing the
// daemon with SIGKILL — no drain, no warning — on a seeded schedule, then
// proves the hardening did its job:
//
//   - zero lost jobs: every submission eventually reaches a done result,
//     across every crash, restart and quarantine;
//   - bounded duplication: no job record exceeds one execution per crash
//     resume plus its persisted retry/stall budget;
//   - bit-identical results: every served payload equals an in-process
//     run of the same spec through the same CampaignRunner at the same
//     worker count — a crashed-and-resumed campaign is indistinguishable
//     from an undisturbed one.
//
// With -nodes N (N >= 2) the harness becomes a cluster drill: N daemons
// share one data directory as a lease-fenced cluster, the seeded SIGKILLs
// hit individual nodes which stay down past the lease TTL — so surviving
// peers genuinely reap and adopt the dead node's jobs — and the audit
// extends to the cluster invariants: the executions bound gains the
// hand-off term (<= 1 + kills + retries + stalls + handoffs), and every
// job's lease-epoch history must be gapless from 1 with the terminal
// record owned at the newest epoch — the on-disk proof that every
// execution ran under exactly one exclusively-claimed lease and no stale
// writer got the last word.
//
// Everything is deterministic from -seed: the spec mix, the kill schedule,
// the victim of each kill (drawn seeded from the nodes currently holding
// job leases, so a kill interrupts real work instead of an idle peer), and
// (with -inject) the service-layer fault site armed inside each daemon
// generation. -min-handoffs fails a cluster run that produced fewer
// hand-offs than expected — the audit that the drill actually drilled.
// Usage:
//
//	tlbchaos -clients 32 -kills 5 -seed 1            # full acceptance run
//	tlbchaos -clients 8 -kills 2 -trials 4000 -race  # make chaos-smoke
//	tlbchaos -nodes 3 -clients 8 -kills 2 -race      # cluster node-kill drill
//
// Exit status 0 means every assertion held; 1 means jobs were lost,
// duplicated beyond budget, or answered with non-identical bytes. -data
// names a directory to run in and keep (CI uploads it when the audit
// fails); by default a temp directory is used and removed.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"securetlb/internal/job"
	"securetlb/internal/pool"
	"securetlb/internal/serve"
)

func main() {
	cfg := chaosConfig{}
	flag.IntVar(&cfg.clients, "clients", 32, "concurrent clients")
	flag.IntVar(&cfg.kills, "kills", 5, "seeded SIGKILLs delivered mid-campaign")
	flag.Uint64Var(&cfg.seed, "seed", 1, "seed for the spec mix and kill schedule")
	flag.IntVar(&cfg.specs, "specs", 8, "distinct campaign specs across the fleet (clients coalesce onto them)")
	flag.IntVar(&cfg.trials, "trials", 8000, "base secbench trials per spec (sets how long a campaign runs)")
	flag.IntVar(&cfg.parallel, "parallel", 2, "daemon worker pool size (the reference runs at the same size)")
	flag.IntVar(&cfg.retries, "retries", 3, "daemon retry budget per job")
	flag.StringVar(&cfg.daemon, "daemon", "", "tlbserved binary (default: build ./cmd/tlbserved)")
	flag.BoolVar(&cfg.race, "race", false, "build the daemon with -race")
	flag.StringVar(&cfg.inject, "inject", "", "arm a service fault site in every daemon generation")
	flag.DurationVar(&cfg.timeout, "timeout", 10*time.Minute, "overall harness deadline")
	flag.IntVar(&cfg.nodes, "nodes", 1, "daemon nodes over one data directory (>= 2 runs a lease-fenced cluster)")
	flag.DurationVar(&cfg.leaseTTL, "lease-ttl", time.Second, "cluster lease TTL (kills keep a node down past it to force hand-offs)")
	flag.IntVar(&cfg.minHandoffs, "min-handoffs", 0, "fail a cluster run with fewer hand-offs than this (proves kills landed on owned jobs)")
	flag.StringVar(&cfg.data, "data", "", "data directory to use and keep (default: a removed temp dir); kept for CI artifacts")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: tlbchaos [flags]")
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "tlbchaos: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("tlbchaos: PASS")
}

type chaosConfig struct {
	clients  int
	kills    int
	seed     uint64
	specs    int
	trials   int
	parallel int
	retries  int
	daemon   string
	race     bool
	inject   string
	timeout  time.Duration
	nodes       int
	leaseTTL    time.Duration
	minHandoffs int
	data        string
}

// splitmix64 matches internal/faultinject's seed expansion, so schedules
// here are reproducible from the same arithmetic.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// pickSpecs derives the deterministic campaign mix: mostly secbench cells
// across the three designs with varied trial counts (long enough for kills
// to land mid-run), plus a perf sweep cell for every fourth spec.
func pickSpecs(seed uint64, n, baseTrials int) []job.Spec {
	state := seed ^ 0xc4a5
	specs := make([]job.Spec, 0, n)
	designs := []string{"sa", "sp", "rf"}
	for i := 0; i < n; i++ {
		if i%4 == 3 {
			specs = append(specs, job.Spec{
				Kind:     job.KindPerf,
				Design:   designs[i%len(designs)],
				Decrypts: 2,
				Seed:     1 + splitmix64(&state)%3,
			})
			continue
		}
		specs = append(specs, job.Spec{
			Kind:   job.KindSecbench,
			Design: designs[splitmix64(&state)%uint64(len(designs))],
			Trials: baseTrials + int(splitmix64(&state)%4)*500,
		})
	}
	return specs
}

// killDelays derives the seeded schedule: how long each daemon generation
// lives before its SIGKILL.
func killDelays(seed uint64, kills int) []time.Duration {
	state := seed ^ 0xdead
	out := make([]time.Duration, kills)
	for i := range out {
		out[i] = time.Duration(300+splitmix64(&state)%700) * time.Millisecond
	}
	return out
}

func run(cfg chaosConfig) error {
	if cfg.nodes < 1 {
		cfg.nodes = 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()

	bin := cfg.daemon
	if bin == "" {
		var err error
		if bin, err = buildDaemon(cfg.race); err != nil {
			return err
		}
	}
	dataDir := cfg.data
	if dataDir == "" {
		var err error
		dataDir, err = os.MkdirTemp("", "tlbchaos-data-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dataDir)
	} else if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return err
	}
	addrs, err := freeAddrs(cfg.nodes)
	if err != nil {
		return err
	}

	specs := pickSpecs(cfg.seed, cfg.specs, cfg.trials)
	delays := killDelays(cfg.seed, cfg.kills)
	common := []string{
		"-parallel", fmt.Sprint(cfg.parallel),
		"-retries", fmt.Sprint(cfg.retries),
		"-max-pending", fmt.Sprint(4 * cfg.specs),
		"-max-per-client", "0",
		"-stall-timeout", "2m",
	}
	clustered := cfg.nodes > 1
	ctls := make([]*controller, cfg.nodes)
	for i, addr := range addrs {
		args := append([]string(nil), common...)
		name := "daemon"
		if clustered {
			name = fmt.Sprintf("node-%d", i)
			args = append(args,
				"-node-id", addr,
				"-peers", strings.Join(addrs, ","),
				"-lease-ttl", cfg.leaseTTL.String(),
			)
		}
		ctls[i] = &controller{
			name:   name,
			bin:    bin,
			dir:    dataDir,
			addr:   addr,
			args:   args,
			inject: cfg.inject,
			seed:   cfg.seed + uint64(i)*101,
		}
		defer ctls[i].killCurrent()
	}
	for _, c := range ctls {
		if err := c.start(ctx); err != nil {
			return err
		}
	}
	fmt.Printf("tlbchaos: %d node(s) up (pool %d, data %s), %d clients x %d specs, %d kills scheduled\n",
		cfg.nodes, cfg.parallel, dataDir, cfg.clients, len(specs), cfg.kills)

	// The client fleet: client i drives specs[i%len(specs)], so several
	// clients coalesce onto each job, and every client survives crashes by
	// retrying, re-polling, rotating to a surviving node, and (after a
	// quarantine) resubmitting.
	fl := &fleet{resubmits: map[string]int{}}
	for _, addr := range addrs {
		fl.bases = append(fl.bases, "http://"+addr)
	}
	var wg sync.WaitGroup
	results := make([]clientResult, cfg.clients)
	for i := 0; i < cfg.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = fl.drive(ctx, fmt.Sprintf("client-%02d", i), specs[i%len(specs)])
		}(i)
	}

	// The kill schedule runs against live traffic. Single daemon: SIGKILL
	// and restart immediately, the classic crash-resume drill. Cluster:
	// pick a seeded victim node, SIGKILL it, and keep it down past the
	// lease TTL so its jobs' leases genuinely expire and surviving peers
	// adopt them — then resurrect it as the same identity, which also
	// exercises the zombie fencing path on its recovery claims.
	killState := cfg.seed ^ 0xbeef
	for k, delay := range delays {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return fmt.Errorf("deadline before kill %d", k+1)
		}
		victim := ctls[0]
		if clustered {
			// Draw the seeded victim from the nodes currently holding job
			// leases: killing an idle peer proves nothing about hand-off.
			// Only when no node owns anything (all jobs already terminal)
			// does the pick fall back to the whole cluster.
			candidates := leaseHolders(ctx, ctls)
			if len(candidates) == 0 {
				candidates = ctls
			}
			victim = candidates[splitmix64(&killState)%uint64(len(candidates))]
		}
		victim.kill(k + 1)
		if clustered {
			down := cfg.leaseTTL + time.Duration(500+splitmix64(&killState)%1000)*time.Millisecond
			fmt.Printf("tlbchaos: %s down for %s (lease TTL %s)\n", victim.name, down, cfg.leaseTTL)
			select {
			case <-time.After(down):
			case <-ctx.Done():
				return fmt.Errorf("deadline during %s's downtime", victim.name)
			}
		}
		if err := victim.start(ctx); err != nil {
			return fmt.Errorf("restart after kill %d: %w", k+1, err)
		}
	}
	fmt.Printf("tlbchaos: kill schedule complete (%d SIGKILLs), waiting for the fleet\n", len(delays))

	wg.Wait()
	if ctx.Err() != nil {
		return fmt.Errorf("harness deadline hit with clients outstanding")
	}

	// --- assertions over the survivors ---------------------------------
	var lost int
	for _, r := range results {
		if r.err != nil {
			lost++
			fmt.Printf("tlbchaos: %s LOST: %v\n", r.name, r.err)
		}
	}
	if lost > 0 {
		return fmt.Errorf("%d of %d clients never got a result", lost, len(results))
	}

	var metrics string
	for _, c := range ctls {
		if m, err := httpGetString(ctx, "http://"+c.addr+"/metrics"); err == nil {
			metrics += m
		}
	}
	for _, c := range ctls {
		c.stopGracefully()
	}

	records, err := finalRecords(dataDir, cfg)
	if err != nil {
		return err
	}
	if err := checkBudgets(records, specs, cfg); err != nil {
		return err
	}
	if clustered {
		if err := checkLeaseHistory(dataDir, records); err != nil {
			return err
		}
		if cfg.minHandoffs > 0 {
			var handoffs int
			for _, j := range records {
				handoffs += j.Handoffs
			}
			if handoffs < cfg.minHandoffs {
				return fmt.Errorf("cluster drill produced %d hand-off(s), want >= %d — the kills never interrupted an owned job",
					handoffs, cfg.minHandoffs)
			}
		}
	}
	if err := checkBitIdentity(ctx, specs, results, cfg); err != nil {
		return err
	}

	summarize(records, results, metrics, cfg)
	return nil
}

// buildDaemon compiles ./cmd/tlbserved into a temp dir.
func buildDaemon(race bool) (string, error) {
	dir, err := os.MkdirTemp("", "tlbchaos-bin-")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "tlbserved")
	args := []string{"build"}
	if race {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, "./cmd/tlbserved")
	cmd := exec.Command("go", args...)
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("go build ./cmd/tlbserved: %v\n%s", err, out)
	}
	return bin, nil
}

// freeAddrs reserves n distinct ephemeral ports (held concurrently so no
// two picks collide) then releases them; every generation of a node
// rebinds its own address so clients and peers need no rediscovery.
func freeAddrs(n int) ([]string, error) {
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}

// controller owns one node's daemon process across generations.
type controller struct {
	name   string
	bin    string
	dir    string
	addr   string
	args   []string
	inject string
	seed   uint64

	mu         sync.Mutex
	cmd        *exec.Cmd
	generation int
}

// start launches a daemon generation and waits until /healthz answers.
// Bind races with the freshly killed predecessor are retried.
func (c *controller) start(ctx context.Context) error {
	c.mu.Lock()
	c.generation++
	gen := c.generation
	args := append([]string{"-addr", c.addr, "-data", c.dir}, c.args...)
	if c.inject != "" {
		args = append(args, "-inject", c.inject, "-fault-seed", fmt.Sprint(c.seed+uint64(gen)))
	}
	c.mu.Unlock()

	for attempt := 0; ; attempt++ {
		cmd := exec.Command(c.bin, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		deadline := time.Now().Add(15 * time.Second)
		for {
			if _, err := httpGetString(ctx, "http://"+c.addr+"/healthz"); err == nil {
				c.mu.Lock()
				c.cmd = cmd
				c.mu.Unlock()
				fmt.Printf("tlbchaos: %s generation %d serving\n", c.name, gen)
				return nil
			}
			if exited := cmd.ProcessState; exited != nil || time.Now().After(deadline) {
				break
			}
			if err := cmd.Process.Signal(syscall.Signal(0)); err != nil {
				break // process died (e.g. lost the bind race)
			}
			select {
			case <-ctx.Done():
				cmd.Process.Kill()
				return ctx.Err()
			case <-time.After(10 * time.Millisecond):
			}
		}
		cmd.Process.Kill()
		cmd.Wait()
		if attempt >= 5 {
			return fmt.Errorf("%s generation %d never became healthy", c.name, gen)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// kill SIGKILLs the current generation — the crash under test, so no
// drain, no checkpoint flush beyond what already hit disk.
func (c *controller) kill(n int) {
	c.mu.Lock()
	cmd := c.cmd
	c.mu.Unlock()
	if cmd == nil {
		return
	}
	cmd.Process.Kill()
	cmd.Wait()
	fmt.Printf("tlbchaos: SIGKILL %d delivered to %s\n", n, c.name)
}

func (c *controller) killCurrent() {
	c.mu.Lock()
	cmd := c.cmd
	c.cmd = nil
	c.mu.Unlock()
	if cmd != nil && cmd.ProcessState == nil {
		cmd.Process.Kill()
		cmd.Wait()
	}
}

// stopGracefully SIGTERMs the final generation so its drain path also gets
// exercised once per run.
func (c *controller) stopGracefully() {
	c.mu.Lock()
	cmd := c.cmd
	c.cmd = nil
	c.mu.Unlock()
	if cmd == nil {
		return
	}
	cmd.Process.Signal(syscall.SIGTERM)
	cmd.Wait()
}

// clientResult is one fleet member's outcome.
type clientResult struct {
	name   string
	specIx int
	id     string
	result []byte
	err    error
}

// fleet is the shared client-side state. bases lists every node's URL;
// a connection failure rotates the fleet to the next node, so clients ride
// out any single node's death the way a load balancer would move them.
type fleet struct {
	bases []string
	next  atomic.Uint32

	mu        sync.Mutex
	resubmits map[string]int // job ID -> resubmissions after loss/quarantine
}

// base is the fleet's current preferred node.
func (f *fleet) base() string { return f.bases[int(f.next.Load())%len(f.bases)] }

// rotate moves the fleet to the next node after a connection failure.
func (f *fleet) rotate() {
	if len(f.bases) > 1 {
		f.next.Add(1)
	}
}

var chaosHTTP = &http.Client{
	Transport: &http.Transport{
		DialContext:           (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
		ResponseHeaderTimeout: 5 * time.Second,
	},
}

// drive is one client's life: submit the spec (retrying connection
// failures and backpressure), poll the job to done (resubmitting if a
// crash quarantined the record), fetch the result.
func (f *fleet) drive(ctx context.Context, name string, spec job.Spec) clientResult {
	res := clientResult{name: name}
	raw, err := json.Marshal(spec)
	if err != nil {
		res.err = err
		return res
	}
	id, err := f.submit(ctx, name, raw)
	if err != nil {
		res.err = fmt.Errorf("submit: %w", err)
		return res
	}
	res.id = id
	for {
		j, code, err := f.poll(ctx, id)
		switch {
		case err != nil:
			res.err = fmt.Errorf("poll: %w", err)
			return res
		case code == http.StatusNotFound:
			// The record was quarantined by a crash mid-write: the job is
			// gone, so the client's contract is to submit again.
			f.mu.Lock()
			f.resubmits[id]++
			f.mu.Unlock()
			if _, err := f.submit(ctx, name, raw); err != nil {
				res.err = fmt.Errorf("resubmit: %w", err)
				return res
			}
		case j.State == job.StateDone:
			body, code, err := f.get(ctx, name, "/jobs/"+id+"/result")
			if err != nil || code != http.StatusOK {
				res.err = fmt.Errorf("result: code=%d err=%v", code, err)
				return res
			}
			res.result = body
			return res
		case j.State == job.StateFailed:
			res.err = fmt.Errorf("job %s failed terminally: %s", id, j.Error)
			return res
		case j.State == job.StateCanceled:
			res.err = fmt.Errorf("job %s canceled unexpectedly", id)
			return res
		}
		select {
		case <-ctx.Done():
			res.err = ctx.Err()
			return res
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// submit POSTs the spec until a daemon accepts it, backing off on
// connection failures (a node mid-restart rotates the fleet to a peer)
// and 429/503 (backpressure).
func (f *fleet) submit(ctx context.Context, name string, raw []byte) (string, error) {
	delay := 50 * time.Millisecond
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, f.base()+"/jobs", bytes.NewReader(raw))
		if err != nil {
			return "", err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client-ID", name)
		resp, err := chaosHTTP.Do(req)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch {
			case rerr != nil:
				err = rerr
				f.rotate()
			case resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK:
				var sub serve.SubmitResponse
				if err := json.Unmarshal(body, &sub); err != nil {
					return "", err
				}
				return sub.ID, nil
			case resp.StatusCode == http.StatusTooManyRequests ||
				resp.StatusCode == http.StatusServiceUnavailable:
				err = fmt.Errorf("backpressure: %s", resp.Status)
			default:
				return "", fmt.Errorf("submit rejected (%s): %s", resp.Status, strings.TrimSpace(string(body)))
			}
		} else {
			f.rotate()
		}
		select {
		case <-ctx.Done():
			return "", fmt.Errorf("%v (last: %v)", ctx.Err(), err)
		case <-time.After(delay):
		}
		if delay < time.Second {
			delay *= 2
		}
	}
}

// poll GETs the job record, retrying connection failures.
func (f *fleet) poll(ctx context.Context, id string) (job.Job, int, error) {
	body, code, err := f.get(ctx, "", "/jobs/"+id)
	if err != nil {
		return job.Job{}, 0, err
	}
	if code != http.StatusOK {
		return job.Job{}, code, nil
	}
	var j job.Job
	if err := json.Unmarshal(body, &j); err != nil {
		return job.Job{}, 0, err
	}
	return j, code, nil
}

// get GETs path from the fleet's current node, retrying connection-level
// failures (rotating nodes) until ctx expires.
func (f *fleet) get(ctx context.Context, client, path string) ([]byte, int, error) {
	delay := 50 * time.Millisecond
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.base()+path, nil)
		if err != nil {
			return nil, 0, err
		}
		if client != "" {
			req.Header.Set("X-Client-ID", client)
		}
		resp, err := chaosHTTP.Do(req)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil {
				return body, resp.StatusCode, nil
			}
			err = rerr
		}
		f.rotate()
		select {
		case <-ctx.Done():
			return nil, 0, fmt.Errorf("%v (last: %v)", ctx.Err(), err)
		case <-time.After(delay):
		}
		if delay < time.Second {
			delay *= 2
		}
	}
}

// leaseHolders returns the controllers whose current generation reports at
// least one held job lease. A node that is down or unreachable is simply
// not a candidate.
func leaseHolders(ctx context.Context, ctls []*controller) []*controller {
	var out []*controller
	for _, c := range ctls {
		m, err := httpGetString(ctx, "http://"+c.addr+"/metrics")
		if err != nil {
			continue
		}
		for _, line := range strings.Split(m, "\n") {
			rest, ok := strings.CutPrefix(line, "tlbserved_leases_held ")
			if !ok {
				continue
			}
			if n, err := strconv.Atoi(strings.TrimSpace(rest)); err == nil && n > 0 {
				out = append(out, c)
			}
			break
		}
	}
	return out
}

func httpGetString(ctx context.Context, url string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := chaosHTTP.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(raw), nil
}

// finalRecords parses every job record left in the data directory after the
// daemon has drained. An unparseable record is only legal when a torn-write
// fault was armed and the tear landed in the final generation (earlier tears
// are healed by the next restart); in that case the recovery contract is
// proved directly — a fresh Open over the directory must quarantine it —
// and the record is excluded from the budget audit. The client that owned
// it already produced a result (checked above), so nothing was lost.
func finalRecords(dir string, cfg chaosConfig) (map[string]job.Job, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := map[string]job.Job{}
	var torn []string
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".job.json") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var j job.Job
		if err := json.Unmarshal(raw, &j); err != nil {
			if cfg.inject != "" {
				torn = append(torn, e.Name())
				continue
			}
			return nil, fmt.Errorf("final record %s unparseable: %w", e.Name(), err)
		}
		out[j.ID] = j
	}
	if len(torn) > 0 {
		if err := checkQuarantineHeals(dir, torn); err != nil {
			return nil, err
		}
		fmt.Printf("tlbchaos: %d torn record(s) from injected %s quarantined on reopen\n",
			len(torn), cfg.inject)
	}
	return out, nil
}

// checkQuarantineHeals reopens the drained data directory the way a
// restarted daemon would and requires every torn record to be moved aside
// to <name>.corrupt rather than wedging or surviving as-is.
func checkQuarantineHeals(dir string, torn []string) error {
	nop := job.RunnerFunc(func(context.Context, job.Spec, func(job.Event)) (json.RawMessage, error) {
		return nil, fmt.Errorf("audit queue never runs jobs")
	})
	q, err := job.Open(dir, nop)
	if err != nil {
		return fmt.Errorf("reopen over torn records: %w", err)
	}
	defer q.Close()
	if got := q.Metrics().Quarantined; got < int64(len(torn)) {
		return fmt.Errorf("reopen quarantined %d record(s), want >= %d", got, len(torn))
	}
	for _, name := range torn {
		if _, err := os.Stat(filepath.Join(dir, name+".corrupt")); err != nil {
			return fmt.Errorf("torn record %s not quarantined on reopen: %v", name, err)
		}
	}
	return nil
}

// checkBudgets asserts bounded duplication: one execution per crash
// resume, hand-off adoption, or consumed retry/stall — nothing silently
// re-ran beyond that, and no record overdrew its persisted budget.
func checkBudgets(records map[string]job.Job, specs []job.Spec, cfg chaosConfig) error {
	for id, j := range records {
		if j.Retries > cfg.retries {
			return fmt.Errorf("job %s consumed %d retries, budget %d", id, j.Retries, cfg.retries)
		}
		maxExec := 1 + cfg.kills + j.Retries + j.Stalls + j.Handoffs
		if j.Executions > maxExec {
			return fmt.Errorf("job %s executed %d times, max allowed %d (kills %d, retries %d, stalls %d, handoffs %d)",
				id, j.Executions, maxExec, cfg.kills, j.Retries, j.Stalls, j.Handoffs)
		}
	}
	return nil
}

// checkLeaseHistory audits the cluster's on-disk ownership trail. Lease
// files are never deleted and every claim takes exactly disk-max+1 via an
// exclusive create, so a correct run leaves, for every job, a gapless
// epoch sequence 1..max with no duplicates possible — a gap would mean an
// epoch was claimed against a stale view of the history, exactly the dual-
// ownership fencing exists to prevent. The terminal record must carry the
// newest epoch's lease: the job's last durable write came from the one
// node that owned it at the end, not from a fenced zombie.
func checkLeaseHistory(dir string, records map[string]job.Job) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	epochs := map[string][]uint64{}
	for _, e := range entries {
		name := e.Name()
		i := strings.Index(name, ".lease.")
		if i < 0 || strings.HasSuffix(name, ".tmp") {
			continue
		}
		epoch, err := strconv.ParseUint(name[i+len(".lease."):], 10, 64)
		if err != nil {
			return fmt.Errorf("unparseable lease filename %s: %v", name, err)
		}
		epochs[name[:i]] = append(epochs[name[:i]], epoch)
	}
	if len(epochs) == 0 {
		return fmt.Errorf("cluster run left no lease files — leases were never active")
	}
	for id, es := range epochs {
		sort.Slice(es, func(a, b int) bool { return es[a] < es[b] })
		for k, e := range es {
			if e != uint64(k+1) {
				return fmt.Errorf("job %s lease history has a gap: epochs %v (want 1..%d gapless)", id, es, len(es))
			}
		}
		j, ok := records[id]
		if !ok {
			continue // quarantined or torn record, audited separately
		}
		if j.Lease == nil {
			return fmt.Errorf("job %s record carries no lease despite %d claimed epoch(s)", id, len(es))
		}
		if max := es[len(es)-1]; j.Lease.Epoch != max {
			return fmt.Errorf("job %s final record written under epoch %d but newest claimed epoch is %d — a stale write got the last word",
				id, j.Lease.Epoch, max)
		}
	}
	fmt.Printf("tlbchaos: lease histories gapless for %d job(s), every final record owned at its newest epoch\n", len(epochs))
	return nil
}

// checkBitIdentity runs every distinct spec through an in-process
// CampaignRunner at the daemon's worker count and requires the daemon's
// served bytes to match exactly.
func checkBitIdentity(ctx context.Context, specs []job.Spec, results []clientResult, cfg chaosConfig) error {
	refDir, err := os.MkdirTemp("", "tlbchaos-ref-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(refDir)
	runner := &serve.CampaignRunner{Dir: refDir, Pool: pool.New(cfg.parallel)}
	refs := map[string][]byte{}
	for _, spec := range specs {
		id, err := spec.ID()
		if err != nil {
			return err
		}
		if _, ok := refs[id]; ok {
			continue
		}
		raw, err := runner.Run(ctx, spec.Normalize(), func(job.Event) {})
		if err != nil {
			return fmt.Errorf("reference run %s: %w", id, err)
		}
		refs[id] = raw
	}
	for _, r := range results {
		want, ok := refs[r.id]
		if !ok {
			return fmt.Errorf("%s holds unknown job %s", r.name, r.id)
		}
		if !bytes.Equal(r.result, want) {
			servedPath := filepath.Join(os.TempDir(), "tlbchaos-served-"+r.id+".json")
			directPath := filepath.Join(os.TempDir(), "tlbchaos-direct-"+r.id+".json")
			os.WriteFile(servedPath, r.result, 0o644)
			os.WriteFile(directPath, want, 0o644)
			return fmt.Errorf("%s: job %s served %d bytes differing from the direct run's %d — results are not bit-identical (dumped to %s, %s)",
				r.name, r.id, len(r.result), len(want), servedPath, directPath)
		}
	}
	return nil
}

func summarize(records map[string]job.Job, results []clientResult, metrics string, cfg chaosConfig) {
	var exec, retries, stalls, handoffs int
	for _, j := range records {
		exec += j.Executions
		retries += j.Retries
		stalls += j.Stalls
		handoffs += j.Handoffs
	}
	fmt.Printf("tlbchaos: %d clients served, %d jobs, %d executions, %d retries, %d stalls, %d handoffs, %d kills across %d node(s)\n",
		len(results), len(records), exec, retries, stalls, handoffs, cfg.kills, cfg.nodes)
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "tlbserved_jobs_quarantined_total") ||
			strings.HasPrefix(line, "tlbserved_retries_total") ||
			strings.HasPrefix(line, "tlbserved_rejected_total") ||
			strings.HasPrefix(line, "tlbserved_jobs_recovered_total") ||
			strings.HasPrefix(line, "tlbserved_handoffs_total") ||
			strings.HasPrefix(line, "tlbserved_fenced_writes_total") ||
			strings.HasPrefix(line, "tlbserved_node_info") {
			fmt.Println("tlbchaos:   " + line)
		}
	}
	if cfg.nodes > 1 {
		fmt.Println("tlbchaos: zero lost jobs, duplication within budget, lease histories sound, results bit-identical")
		return
	}
	fmt.Println("tlbchaos: zero lost jobs, duplication within budget, results bit-identical")
}
