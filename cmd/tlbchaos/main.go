// Command tlbchaos is the service-layer chaos harness: it drives a fleet
// of concurrent clients against a real tlbserved daemon while killing the
// daemon with SIGKILL — no drain, no warning — on a seeded schedule, then
// proves the hardening did its job:
//
//   - zero lost jobs: every submission eventually reaches a done result,
//     across every crash, restart and quarantine;
//   - bounded duplication: no job record exceeds one execution per crash
//     resume plus its persisted retry/stall budget;
//   - bit-identical results: every served payload equals an in-process
//     run of the same spec through the same CampaignRunner at the same
//     worker count — a crashed-and-resumed campaign is indistinguishable
//     from an undisturbed one.
//
// Everything is deterministic from -seed: the spec mix, the kill schedule,
// and (with -inject) the service-layer fault site armed inside each daemon
// generation. Usage:
//
//	tlbchaos -clients 32 -kills 5 -seed 1            # full acceptance run
//	tlbchaos -clients 8 -kills 2 -trials 4000 -race  # make chaos-smoke
//
// Exit status 0 means every assertion held; 1 means jobs were lost,
// duplicated beyond budget, or answered with non-identical bytes.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"securetlb/internal/job"
	"securetlb/internal/pool"
	"securetlb/internal/serve"
)

func main() {
	cfg := chaosConfig{}
	flag.IntVar(&cfg.clients, "clients", 32, "concurrent clients")
	flag.IntVar(&cfg.kills, "kills", 5, "seeded SIGKILLs delivered mid-campaign")
	flag.Uint64Var(&cfg.seed, "seed", 1, "seed for the spec mix and kill schedule")
	flag.IntVar(&cfg.specs, "specs", 8, "distinct campaign specs across the fleet (clients coalesce onto them)")
	flag.IntVar(&cfg.trials, "trials", 8000, "base secbench trials per spec (sets how long a campaign runs)")
	flag.IntVar(&cfg.parallel, "parallel", 2, "daemon worker pool size (the reference runs at the same size)")
	flag.IntVar(&cfg.retries, "retries", 3, "daemon retry budget per job")
	flag.StringVar(&cfg.daemon, "daemon", "", "tlbserved binary (default: build ./cmd/tlbserved)")
	flag.BoolVar(&cfg.race, "race", false, "build the daemon with -race")
	flag.StringVar(&cfg.inject, "inject", "", "arm a service fault site in every daemon generation")
	flag.DurationVar(&cfg.timeout, "timeout", 10*time.Minute, "overall harness deadline")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: tlbchaos [flags]")
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "tlbchaos: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("tlbchaos: PASS")
}

type chaosConfig struct {
	clients  int
	kills    int
	seed     uint64
	specs    int
	trials   int
	parallel int
	retries  int
	daemon   string
	race     bool
	inject   string
	timeout  time.Duration
}

// splitmix64 matches internal/faultinject's seed expansion, so schedules
// here are reproducible from the same arithmetic.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// pickSpecs derives the deterministic campaign mix: mostly secbench cells
// across the three designs with varied trial counts (long enough for kills
// to land mid-run), plus a perf sweep cell for every fourth spec.
func pickSpecs(seed uint64, n, baseTrials int) []job.Spec {
	state := seed ^ 0xc4a5
	specs := make([]job.Spec, 0, n)
	designs := []string{"sa", "sp", "rf"}
	for i := 0; i < n; i++ {
		if i%4 == 3 {
			specs = append(specs, job.Spec{
				Kind:     job.KindPerf,
				Design:   designs[i%len(designs)],
				Decrypts: 2,
				Seed:     1 + splitmix64(&state)%3,
			})
			continue
		}
		specs = append(specs, job.Spec{
			Kind:   job.KindSecbench,
			Design: designs[splitmix64(&state)%uint64(len(designs))],
			Trials: baseTrials + int(splitmix64(&state)%4)*500,
		})
	}
	return specs
}

// killDelays derives the seeded schedule: how long each daemon generation
// lives before its SIGKILL.
func killDelays(seed uint64, kills int) []time.Duration {
	state := seed ^ 0xdead
	out := make([]time.Duration, kills)
	for i := range out {
		out[i] = time.Duration(300+splitmix64(&state)%700) * time.Millisecond
	}
	return out
}

func run(cfg chaosConfig) error {
	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()

	bin := cfg.daemon
	if bin == "" {
		var err error
		if bin, err = buildDaemon(cfg.race); err != nil {
			return err
		}
	}
	dataDir, err := os.MkdirTemp("", "tlbchaos-data-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)
	port, err := freePort()
	if err != nil {
		return err
	}

	specs := pickSpecs(cfg.seed, cfg.specs, cfg.trials)
	delays := killDelays(cfg.seed, cfg.kills)
	ctl := &controller{
		bin:  bin,
		dir:  dataDir,
		addr: fmt.Sprintf("127.0.0.1:%d", port),
		args: []string{
			"-parallel", fmt.Sprint(cfg.parallel),
			"-retries", fmt.Sprint(cfg.retries),
			"-max-pending", fmt.Sprint(4 * cfg.specs),
			"-max-per-client", "0",
			"-stall-timeout", "2m",
		},
		inject: cfg.inject,
		seed:   cfg.seed,
	}
	defer ctl.killCurrent()

	if err := ctl.start(ctx); err != nil {
		return err
	}
	fmt.Printf("tlbchaos: daemon up on %s (pool %d), %d clients x %d specs, %d kills scheduled\n",
		ctl.addr, cfg.parallel, cfg.clients, len(specs), cfg.kills)

	// The client fleet: client i drives specs[i%len(specs)], so several
	// clients coalesce onto each job, and every client survives crashes by
	// retrying, re-polling and (after a quarantine) resubmitting.
	fleet := &fleet{base: "http://" + ctl.addr, resubmits: map[string]int{}}
	var wg sync.WaitGroup
	results := make([]clientResult, cfg.clients)
	for i := 0; i < cfg.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = fleet.drive(ctx, fmt.Sprintf("client-%02d", i), specs[i%len(specs)])
		}(i)
	}

	// The kill schedule runs against live traffic: let each generation
	// serve for its seeded interval, SIGKILL it, restart over the same
	// data directory.
	for k, delay := range delays {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return fmt.Errorf("deadline before kill %d", k+1)
		}
		ctl.kill(k + 1)
		if err := ctl.start(ctx); err != nil {
			return fmt.Errorf("restart after kill %d: %w", k+1, err)
		}
	}
	fmt.Printf("tlbchaos: kill schedule complete (%d SIGKILLs), waiting for the fleet\n", len(delays))

	wg.Wait()
	if ctx.Err() != nil {
		return fmt.Errorf("harness deadline hit with clients outstanding")
	}

	// --- assertions over the survivors ---------------------------------
	var lost int
	for _, r := range results {
		if r.err != nil {
			lost++
			fmt.Printf("tlbchaos: %s LOST: %v\n", r.name, r.err)
		}
	}
	if lost > 0 {
		return fmt.Errorf("%d of %d clients never got a result", lost, len(results))
	}

	metrics, _ := httpGetString(ctx, fleet.base+"/metrics")
	ctl.stopGracefully()

	records, err := finalRecords(ctl, cfg)
	if err != nil {
		return err
	}
	if err := checkBudgets(records, specs, cfg); err != nil {
		return err
	}
	if err := checkBitIdentity(ctx, specs, results, cfg); err != nil {
		return err
	}

	summarize(records, results, metrics, cfg)
	return nil
}

// buildDaemon compiles ./cmd/tlbserved into a temp dir.
func buildDaemon(race bool) (string, error) {
	dir, err := os.MkdirTemp("", "tlbchaos-bin-")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "tlbserved")
	args := []string{"build"}
	if race {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, "./cmd/tlbserved")
	cmd := exec.Command("go", args...)
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("go build ./cmd/tlbserved: %v\n%s", err, out)
	}
	return bin, nil
}

// freePort reserves then releases an ephemeral port; every daemon
// generation rebinds the same address so clients need no rediscovery.
func freePort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port, nil
}

// controller owns the daemon process across generations.
type controller struct {
	bin    string
	dir    string
	addr   string
	args   []string
	inject string
	seed   uint64

	mu         sync.Mutex
	cmd        *exec.Cmd
	generation int
}

// start launches a daemon generation and waits until /healthz answers.
// Bind races with the freshly killed predecessor are retried.
func (c *controller) start(ctx context.Context) error {
	c.mu.Lock()
	c.generation++
	gen := c.generation
	args := append([]string{"-addr", c.addr, "-data", c.dir}, c.args...)
	if c.inject != "" {
		args = append(args, "-inject", c.inject, "-fault-seed", fmt.Sprint(c.seed+uint64(gen)))
	}
	c.mu.Unlock()

	for attempt := 0; ; attempt++ {
		cmd := exec.Command(c.bin, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		deadline := time.Now().Add(15 * time.Second)
		for {
			if _, err := httpGetString(ctx, "http://"+c.addr+"/healthz"); err == nil {
				c.mu.Lock()
				c.cmd = cmd
				c.mu.Unlock()
				fmt.Printf("tlbchaos: generation %d serving\n", gen)
				return nil
			}
			if exited := cmd.ProcessState; exited != nil || time.Now().After(deadline) {
				break
			}
			if err := cmd.Process.Signal(syscall.Signal(0)); err != nil {
				break // process died (e.g. lost the bind race)
			}
			select {
			case <-ctx.Done():
				cmd.Process.Kill()
				return ctx.Err()
			case <-time.After(10 * time.Millisecond):
			}
		}
		cmd.Process.Kill()
		cmd.Wait()
		if attempt >= 5 {
			return fmt.Errorf("generation %d never became healthy", gen)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// kill SIGKILLs the current generation — the crash under test, so no
// drain, no checkpoint flush beyond what already hit disk.
func (c *controller) kill(n int) {
	c.mu.Lock()
	cmd := c.cmd
	c.mu.Unlock()
	if cmd == nil {
		return
	}
	cmd.Process.Kill()
	cmd.Wait()
	fmt.Printf("tlbchaos: SIGKILL %d delivered\n", n)
}

func (c *controller) killCurrent() {
	c.mu.Lock()
	cmd := c.cmd
	c.cmd = nil
	c.mu.Unlock()
	if cmd != nil && cmd.ProcessState == nil {
		cmd.Process.Kill()
		cmd.Wait()
	}
}

// stopGracefully SIGTERMs the final generation so its drain path also gets
// exercised once per run.
func (c *controller) stopGracefully() {
	c.mu.Lock()
	cmd := c.cmd
	c.cmd = nil
	c.mu.Unlock()
	if cmd == nil {
		return
	}
	cmd.Process.Signal(syscall.SIGTERM)
	cmd.Wait()
}

// clientResult is one fleet member's outcome.
type clientResult struct {
	name   string
	specIx int
	id     string
	result []byte
	err    error
}

// fleet is the shared client-side state.
type fleet struct {
	base string

	mu        sync.Mutex
	resubmits map[string]int // job ID -> resubmissions after loss/quarantine
}

var chaosHTTP = &http.Client{
	Transport: &http.Transport{
		DialContext:           (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
		ResponseHeaderTimeout: 5 * time.Second,
	},
}

// drive is one client's life: submit the spec (retrying connection
// failures and backpressure), poll the job to done (resubmitting if a
// crash quarantined the record), fetch the result.
func (f *fleet) drive(ctx context.Context, name string, spec job.Spec) clientResult {
	res := clientResult{name: name}
	raw, err := json.Marshal(spec)
	if err != nil {
		res.err = err
		return res
	}
	id, err := f.submit(ctx, name, raw)
	if err != nil {
		res.err = fmt.Errorf("submit: %w", err)
		return res
	}
	res.id = id
	for {
		j, code, err := f.poll(ctx, id)
		switch {
		case err != nil:
			res.err = fmt.Errorf("poll: %w", err)
			return res
		case code == http.StatusNotFound:
			// The record was quarantined by a crash mid-write: the job is
			// gone, so the client's contract is to submit again.
			f.mu.Lock()
			f.resubmits[id]++
			f.mu.Unlock()
			if _, err := f.submit(ctx, name, raw); err != nil {
				res.err = fmt.Errorf("resubmit: %w", err)
				return res
			}
		case j.State == job.StateDone:
			body, code, err := f.get(ctx, name, f.base+"/jobs/"+id+"/result")
			if err != nil || code != http.StatusOK {
				res.err = fmt.Errorf("result: code=%d err=%v", code, err)
				return res
			}
			res.result = body
			return res
		case j.State == job.StateFailed:
			res.err = fmt.Errorf("job %s failed terminally: %s", id, j.Error)
			return res
		case j.State == job.StateCanceled:
			res.err = fmt.Errorf("job %s canceled unexpectedly", id)
			return res
		}
		select {
		case <-ctx.Done():
			res.err = ctx.Err()
			return res
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// submit POSTs the spec until the daemon accepts it, backing off on
// connection failures (daemon mid-restart) and 429/503 (backpressure).
func (f *fleet) submit(ctx context.Context, name string, raw []byte) (string, error) {
	delay := 50 * time.Millisecond
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, f.base+"/jobs", bytes.NewReader(raw))
		if err != nil {
			return "", err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client-ID", name)
		resp, err := chaosHTTP.Do(req)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch {
			case rerr != nil:
				err = rerr
			case resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK:
				var sub serve.SubmitResponse
				if err := json.Unmarshal(body, &sub); err != nil {
					return "", err
				}
				return sub.ID, nil
			case resp.StatusCode == http.StatusTooManyRequests ||
				resp.StatusCode == http.StatusServiceUnavailable:
				err = fmt.Errorf("backpressure: %s", resp.Status)
			default:
				return "", fmt.Errorf("submit rejected (%s): %s", resp.Status, strings.TrimSpace(string(body)))
			}
		}
		select {
		case <-ctx.Done():
			return "", fmt.Errorf("%v (last: %v)", ctx.Err(), err)
		case <-time.After(delay):
		}
		if delay < time.Second {
			delay *= 2
		}
	}
}

// poll GETs the job record, retrying connection failures.
func (f *fleet) poll(ctx context.Context, id string) (job.Job, int, error) {
	body, code, err := f.get(ctx, "", f.base+"/jobs/"+id)
	if err != nil {
		return job.Job{}, 0, err
	}
	if code != http.StatusOK {
		return job.Job{}, code, nil
	}
	var j job.Job
	if err := json.Unmarshal(body, &j); err != nil {
		return job.Job{}, 0, err
	}
	return j, code, nil
}

// get GETs url, retrying connection-level failures until ctx expires.
func (f *fleet) get(ctx context.Context, client, url string) ([]byte, int, error) {
	delay := 50 * time.Millisecond
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, 0, err
		}
		if client != "" {
			req.Header.Set("X-Client-ID", client)
		}
		resp, err := chaosHTTP.Do(req)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil {
				return body, resp.StatusCode, nil
			}
			err = rerr
		}
		select {
		case <-ctx.Done():
			return nil, 0, fmt.Errorf("%v (last: %v)", ctx.Err(), err)
		case <-time.After(delay):
		}
		if delay < time.Second {
			delay *= 2
		}
	}
}

func httpGetString(ctx context.Context, url string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := chaosHTTP.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(raw), nil
}

// finalRecords parses every job record left in the data directory after the
// daemon has drained. An unparseable record is only legal when a torn-write
// fault was armed and the tear landed in the final generation (earlier tears
// are healed by the next restart); in that case the recovery contract is
// proved directly — a fresh Open over the directory must quarantine it —
// and the record is excluded from the budget audit. The client that owned
// it already produced a result (checked above), so nothing was lost.
func finalRecords(c *controller, cfg chaosConfig) (map[string]job.Job, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, err
	}
	out := map[string]job.Job{}
	var torn []string
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".job.json") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(c.dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var j job.Job
		if err := json.Unmarshal(raw, &j); err != nil {
			if cfg.inject != "" {
				torn = append(torn, e.Name())
				continue
			}
			return nil, fmt.Errorf("final record %s unparseable: %w", e.Name(), err)
		}
		out[j.ID] = j
	}
	if len(torn) > 0 {
		if err := checkQuarantineHeals(c.dir, torn); err != nil {
			return nil, err
		}
		fmt.Printf("tlbchaos: %d torn record(s) from injected %s quarantined on reopen\n",
			len(torn), cfg.inject)
	}
	return out, nil
}

// checkQuarantineHeals reopens the drained data directory the way a
// restarted daemon would and requires every torn record to be moved aside
// to <name>.corrupt rather than wedging or surviving as-is.
func checkQuarantineHeals(dir string, torn []string) error {
	nop := job.RunnerFunc(func(context.Context, job.Spec, func(job.Event)) (json.RawMessage, error) {
		return nil, fmt.Errorf("audit queue never runs jobs")
	})
	q, err := job.Open(dir, nop)
	if err != nil {
		return fmt.Errorf("reopen over torn records: %w", err)
	}
	defer q.Close()
	if got := q.Metrics().Quarantined; got < int64(len(torn)) {
		return fmt.Errorf("reopen quarantined %d record(s), want >= %d", got, len(torn))
	}
	for _, name := range torn {
		if _, err := os.Stat(filepath.Join(dir, name+".corrupt")); err != nil {
			return fmt.Errorf("torn record %s not quarantined on reopen: %v", name, err)
		}
	}
	return nil
}

// checkBudgets asserts bounded duplication: one execution per crash resume
// plus the consumed retry/stall budget — nothing silently re-ran beyond
// that, and no record overdrew its persisted budget.
func checkBudgets(records map[string]job.Job, specs []job.Spec, cfg chaosConfig) error {
	for id, j := range records {
		if j.Retries > cfg.retries {
			return fmt.Errorf("job %s consumed %d retries, budget %d", id, j.Retries, cfg.retries)
		}
		maxExec := 1 + cfg.kills + j.Retries + j.Stalls
		if j.Executions > maxExec {
			return fmt.Errorf("job %s executed %d times, max allowed %d (kills %d, retries %d, stalls %d)",
				id, j.Executions, maxExec, cfg.kills, j.Retries, j.Stalls)
		}
	}
	return nil
}

// checkBitIdentity runs every distinct spec through an in-process
// CampaignRunner at the daemon's worker count and requires the daemon's
// served bytes to match exactly.
func checkBitIdentity(ctx context.Context, specs []job.Spec, results []clientResult, cfg chaosConfig) error {
	refDir, err := os.MkdirTemp("", "tlbchaos-ref-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(refDir)
	runner := &serve.CampaignRunner{Dir: refDir, Pool: pool.New(cfg.parallel)}
	refs := map[string][]byte{}
	for _, spec := range specs {
		id, err := spec.ID()
		if err != nil {
			return err
		}
		if _, ok := refs[id]; ok {
			continue
		}
		raw, err := runner.Run(ctx, spec.Normalize(), func(job.Event) {})
		if err != nil {
			return fmt.Errorf("reference run %s: %w", id, err)
		}
		refs[id] = raw
	}
	for _, r := range results {
		want, ok := refs[r.id]
		if !ok {
			return fmt.Errorf("%s holds unknown job %s", r.name, r.id)
		}
		if !bytes.Equal(r.result, want) {
			servedPath := filepath.Join(os.TempDir(), "tlbchaos-served-"+r.id+".json")
			directPath := filepath.Join(os.TempDir(), "tlbchaos-direct-"+r.id+".json")
			os.WriteFile(servedPath, r.result, 0o644)
			os.WriteFile(directPath, want, 0o644)
			return fmt.Errorf("%s: job %s served %d bytes differing from the direct run's %d — results are not bit-identical (dumped to %s, %s)",
				r.name, r.id, len(r.result), len(want), servedPath, directPath)
		}
	}
	return nil
}

func summarize(records map[string]job.Job, results []clientResult, metrics string, cfg chaosConfig) {
	var exec, retries, stalls int
	for _, j := range records {
		exec += j.Executions
		retries += j.Retries
		stalls += j.Stalls
	}
	fmt.Printf("tlbchaos: %d clients served, %d jobs, %d executions, %d retries, %d stalls, %d kills\n",
		len(results), len(records), exec, retries, stalls, cfg.kills)
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "tlbserved_jobs_quarantined_total") ||
			strings.HasPrefix(line, "tlbserved_retries_total") ||
			strings.HasPrefix(line, "tlbserved_rejected_total") ||
			strings.HasPrefix(line, "tlbserved_jobs_recovered_total") {
			fmt.Println("tlbchaos:   " + line)
		}
	}
	fmt.Println("tlbchaos: zero lost jobs, duplication within budget, results bit-identical")
}
