package main

import (
	"testing"
	"time"
)

// TestScheduleDeterminism: the spec mix and kill schedule are pure
// functions of the seed — a chaos run can be replayed exactly.
func TestScheduleDeterminism(t *testing.T) {
	a := pickSpecs(7, 8, 4000)
	b := pickSpecs(7, 8, 4000)
	if len(a) != 8 {
		t.Fatalf("pickSpecs returned %d specs, want 8", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("spec %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
		if err := a[i].Normalize().Validate(); err != nil {
			t.Errorf("spec %d invalid: %v", i, err)
		}
	}
	if c := pickSpecs(8, 8, 4000); a[0] == c[0] && a[1] == c[1] && a[2] == c[2] {
		t.Error("different seeds produced the same leading specs")
	}

	d1, d2 := killDelays(7, 5), killDelays(7, 5)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Errorf("kill %d differs across identical seeds: %v vs %v", i, d1[i], d2[i])
		}
		if d1[i] < 300*time.Millisecond || d1[i] >= time.Second {
			t.Errorf("kill %d delay %v outside [300ms, 1s)", i, d1[i])
		}
	}
}
