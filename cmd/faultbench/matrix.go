package main

// This file is the testable core of faultbench: building the cell list,
// running the differential campaigns, aggregating per (site, design) and
// rendering the matrix. main.go only parses flags and applies the verdict.

import (
	"fmt"
	"os"

	"securetlb/internal/faultinject"
	"securetlb/internal/model"
	"securetlb/internal/pool"
	"securetlb/internal/report"
	"securetlb/internal/secbench"
)

// matrixConfig parameterises one faultbench run.
type matrixConfig struct {
	Trials   int
	NVulns   int
	Seed     uint64
	Parallel int
	// Sites to exercise; at-rest checkpoint sites are routed to the
	// corruption verifier, everything else to differential campaigns.
	Sites []faultinject.Site
	// Designs every design-agnostic machine site runs on (the
	// design-specific sites run on their own design regardless).
	Designs []secbench.Design
	// RestSeeds is how many corrupted-checkpoint variants each at-rest site
	// verifies.
	RestSeeds uint64
}

// allDesigns is the full robustness battery: every design in the arena (the
// paper's three, FA, RI and FS), every one wrapped by the assertion layer.
func allDesigns() []secbench.Design {
	return secbench.AllDesigns()
}

// matrixRow is one aggregated (site, design) line of the report plus the
// verdict inputs.
type matrixRow struct {
	cell secbench.FaultCell
}

// matrixResult is everything a run produces: report rows in deterministic
// order and the verdict tallies.
type matrixResult struct {
	Rows           []matrixRow
	DetectedBySite map[faultinject.Site]int
	Silent         int
}

// cellSpec is one differential campaign to run.
type cellSpec struct {
	site   faultinject.Site
	design secbench.Design
	vuln   model.Vulnerability
}

// splitSites partitions sites into machine sites (differential campaigns)
// and at-rest checkpoint sites (corruption verification).
func splitSites(sites []faultinject.Site) (machine, rest []faultinject.Site) {
	for _, s := range sites {
		if s == faultinject.SiteCheckpointTruncate || s == faultinject.SiteCheckpointBitRot {
			rest = append(rest, s)
			continue
		}
		machine = append(machine, s)
	}
	return machine, rest
}

// buildSpecs expands the machine sites into the full site x design x
// vulnerability cell list. Design-specific sites (RF's RNG bias, RI's stuck
// key, FS's dropped flush) run on their design alone.
func buildSpecs(machine []faultinject.Site, designs []secbench.Design, vulns []model.Vulnerability) []cellSpec {
	var specs []cellSpec
	for _, s := range machine {
		ds := designs
		if s.RFOnly() || s.RIOnly() || s.FSOnly() {
			ds = secbench.DesignsForSite(s)
		}
		for _, d := range ds {
			for _, v := range vulns {
				specs = append(specs, cellSpec{s, d, v})
			}
		}
	}
	return specs
}

// runMachineSites runs every differential cell on a bounded pool and
// aggregates the results per (site, design), in site-major order.
func runMachineSites(mc matrixConfig, machine []faultinject.Site, vulns []model.Vulnerability) (matrixResult, error) {
	res := matrixResult{DetectedBySite: map[faultinject.Site]int{}}
	specs := buildSpecs(machine, mc.Designs, vulns)
	cells := make([]secbench.FaultCell, len(specs))
	errs := make([]error, len(specs))
	pool.New(mc.Parallel).ForEach(len(specs), func(i int) {
		cfg := secbench.DefaultConfig(specs[i].design)
		cfg.Trials = mc.Trials
		cfg.Invariants = true
		cfg.FaultSeed = mc.Seed
		// The matrix vulnerabilities perform few fills per trial; a short
		// re-key period keeps the RI re-key site reachable mid-trial.
		cfg.RekeyFills = 2
		cells[i], errs[i] = cfg.RunFaultCell(specs[i].vuln, true, specs[i].site, mc.Trials)
	})
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}

	type key struct {
		site   faultinject.Site
		design string
	}
	agg := map[key]*secbench.FaultCell{}
	var order []key
	for _, c := range cells {
		k := key{c.Site, c.Design}
		a, ok := agg[k]
		if !ok {
			a = &secbench.FaultCell{
				Site: c.Site, Design: c.Design,
				Detected:   map[string]int{},
				Assertions: map[string]int{},
			}
			agg[k] = a
			order = append(order, k)
		}
		a.Trials += c.Trials
		for kind, n := range c.Detected {
			a.Detected[kind] += n
		}
		for name, n := range c.Assertions {
			a.Assertions[name] += n
		}
		a.Benign += c.Benign
		a.Latent += c.Latent
		a.Silent = append(a.Silent, c.Silent...)
		if a.Detail == "" {
			a.Detail = c.Detail
		}
		res.DetectedBySite[c.Site] += c.DetectedTotal()
		res.Silent += len(c.Silent)
	}
	for _, k := range order {
		res.Rows = append(res.Rows, matrixRow{cell: *agg[k]})
	}
	return res, nil
}

// runRestSites verifies the at-rest checkpoint sites by corrupting freshly
// written checkpoint files and requiring loud refusal on resume. Each site
// contributes one synthetic row.
func runRestSites(mc matrixConfig, rest []faultinject.Site, res *matrixResult) error {
	seeds := mc.RestSeeds
	if seeds == 0 {
		seeds = 8
	}
	for _, s := range rest {
		dir, err := os.MkdirTemp("", "faultbench")
		if err != nil {
			return err
		}
		cfg := secbench.DefaultConfig(secbench.DesignSA)
		cfg.Trials = mc.Trials
		loud, benign := 0, 0
		detail := ""
		for i := uint64(0); i < seeds; i++ {
			detected, d, err := cfg.VerifyCheckpointFault(dir, s, mc.Seed+i)
			if err != nil {
				os.RemoveAll(dir)
				return err
			}
			if detected {
				loud++
			} else {
				benign++
			}
			if detail == "" {
				detail = d
			}
		}
		os.RemoveAll(dir)
		res.DetectedBySite[s] += loud
		res.Rows = append(res.Rows, matrixRow{cell: secbench.FaultCell{
			Site:     s,
			Design:   "checkpoint",
			Trials:   int(seeds),
			Detected: map[string]int{"corrupt-refused": loud},
			Benign:   benign,
			Detail:   detail,
		}})
	}
	return nil
}

// runMatrix runs the whole configured matrix: differential campaigns for the
// machine sites, corruption verification for the at-rest sites.
func runMatrix(mc matrixConfig) (matrixResult, error) {
	vulns := pickVulns(mc.NVulns)
	machine, rest := splitSites(mc.Sites)
	res, err := runMachineSites(mc, machine, vulns)
	if err != nil {
		return res, err
	}
	if err := runRestSites(mc, rest, &res); err != nil {
		return res, err
	}
	return res, nil
}

// renderMatrix renders the aggregated rows as the fault-matrix report.
func renderMatrix(res matrixResult) string {
	rows := make([][]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		a := r.cell
		rows = append(rows, []string{
			string(a.Site), a.Design,
			fmt.Sprintf("%d", a.Trials),
			a.Kinds(),
			a.AssertionNames(),
			fmt.Sprintf("%d", a.Benign),
			fmt.Sprintf("%d", a.Latent),
			fmt.Sprintf("%d", len(a.Silent)),
			a.Detail,
		})
	}
	return report.FaultMatrix(rows)
}

// pickVulns selects the first n vulnerabilities that include a victim access
// step (secure-region traffic, so the RF-only sites can fire).
func pickVulns(n int) []model.Vulnerability {
	var out []model.Vulnerability
	for _, v := range model.Enumerate() {
		for _, s := range v.Pattern {
			if s.Actor == model.ActorV && (s.Class == model.ClassU || s.Class == model.ClassA) {
				out = append(out, v)
				break
			}
		}
		if len(out) == n {
			break
		}
	}
	return out
}
