// Command faultbench runs the differential fault-injection matrix: for
// every registered fault site it executes a clean and a faulted security
// campaign over identical trial seeds and classifies each faulted trial as
// detected (quarantined with a reported kind), benign (fault landed, outcome
// bit-identical to the clean run) or latent (trigger never reached). The two
// at-rest checkpoint sites are exercised by corrupting a freshly written
// checkpoint file and requiring the resume to fail loudly.
//
// Usage:
//
//	faultbench                      # full matrix, every site x every design
//	faultbench -site tlb-tag-flip   # one site
//	faultbench -trials 32 -vulns 3  # heavier sampling
//	faultbench -list                # print the registered sites
//
// The exit status is the acceptance verdict: non-zero if any fault changed a
// trial's outcome without being detected (silent corruption) or if any site
// was never detected at all.
package main

import (
	"flag"
	"fmt"
	"os"

	"securetlb/internal/faultinject"
	"securetlb/internal/model"
	"securetlb/internal/pool"
	"securetlb/internal/report"
	"securetlb/internal/secbench"
)

func main() {
	trials := flag.Int("trials", 16, "trials per (site, design, vulnerability) cell")
	nvulns := flag.Int("vulns", 2, "how many vulnerability types to fault per cell")
	siteFlag := flag.String("site", "", "run a single site instead of the full matrix")
	seed := flag.Uint64("fault-seed", 0xfa115eed, "campaign-level fault seed")
	parallel := flag.Int("parallel", 0, "worker pool size for the matrix cells (0 = all CPUs)")
	list := flag.Bool("list", false, "print the registered fault sites and exit")
	flag.Parse()

	if *list {
		for _, s := range faultinject.Sites() {
			fmt.Println(s)
		}
		return
	}
	if err := validateFlags(*trials, *nvulns, *parallel); err != nil {
		fatal(err)
	}
	sites := faultinject.Sites()
	if *siteFlag != "" {
		s, err := faultinject.ParseSite(*siteFlag)
		if err != nil {
			fatal(err)
		}
		sites = []faultinject.Site{s}
	}
	vulns := pickVulns(*nvulns)

	// Build the cell list: machine sites run on every applicable design,
	// at-rest sites are verified separately below.
	type cellSpec struct {
		site   faultinject.Site
		design secbench.Design
		vuln   model.Vulnerability
	}
	var specs []cellSpec
	var restSites []faultinject.Site
	for _, s := range sites {
		if s == faultinject.SiteCheckpointTruncate || s == faultinject.SiteCheckpointBitRot {
			restSites = append(restSites, s)
			continue
		}
		designs := []secbench.Design{secbench.DesignSA, secbench.DesignSP, secbench.DesignRF}
		if s.RFOnly() {
			designs = []secbench.Design{secbench.DesignRF}
		}
		for _, d := range designs {
			for _, v := range vulns {
				specs = append(specs, cellSpec{s, d, v})
			}
		}
	}

	cells := make([]secbench.FaultCell, len(specs))
	errs := make([]error, len(specs))
	pool.New(*parallel).ForEach(len(specs), func(i int) {
		cfg := secbench.DefaultConfig(specs[i].design)
		cfg.Trials = *trials
		cfg.Invariants = true
		cfg.FaultSeed = *seed
		cells[i], errs[i] = cfg.RunFaultCell(specs[i].vuln, true, specs[i].site, *trials)
	})
	for _, err := range errs {
		if err != nil {
			fatal(err)
		}
	}

	// Aggregate per (site, design) for the report; track per-site detection
	// and global silence for the verdict.
	type key struct {
		site   faultinject.Site
		design string
	}
	agg := map[key]*secbench.FaultCell{}
	var order []key
	detectedBySite := map[faultinject.Site]int{}
	silent := 0
	for _, c := range cells {
		k := key{c.Site, c.Design}
		a, ok := agg[k]
		if !ok {
			a = &secbench.FaultCell{Site: c.Site, Design: c.Design, Detected: map[string]int{}}
			agg[k] = a
			order = append(order, k)
		}
		a.Trials += c.Trials
		for kind, n := range c.Detected {
			a.Detected[kind] += n
		}
		a.Benign += c.Benign
		a.Latent += c.Latent
		a.Silent = append(a.Silent, c.Silent...)
		if a.Detail == "" {
			a.Detail = c.Detail
		}
		detectedBySite[c.Site] += c.DetectedTotal()
		silent += len(c.Silent)
	}
	rows := make([][]string, 0, len(order))
	for _, k := range order {
		a := agg[k]
		rows = append(rows, []string{
			string(a.Site), a.Design,
			fmt.Sprintf("%d", a.Trials),
			a.Kinds(),
			fmt.Sprintf("%d", a.Benign),
			fmt.Sprintf("%d", a.Latent),
			fmt.Sprintf("%d", len(a.Silent)),
			a.Detail,
		})
	}

	// At-rest checkpoint sites.
	for _, s := range restSites {
		dir, err := os.MkdirTemp("", "faultbench")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		cfg := secbench.DefaultConfig(secbench.DesignSA)
		cfg.Trials = *trials
		loud, benign := 0, 0
		detail := ""
		for i := uint64(0); i < 8; i++ {
			detected, d, err := cfg.VerifyCheckpointFault(dir, s, *seed+i)
			if err != nil {
				fatal(err)
			}
			if detected {
				loud++
			} else {
				benign++
			}
			if detail == "" {
				detail = d
			}
		}
		detectedBySite[s] += loud
		rows = append(rows, []string{
			string(s), "checkpoint", "8",
			fmt.Sprintf("corrupt-refused:%d", loud),
			fmt.Sprintf("%d", benign), "0", "0", detail,
		})
	}

	fmt.Print(report.FaultMatrix(rows))

	failed := false
	if silent > 0 {
		fmt.Fprintf(os.Stderr, "faultbench: FAIL: %d silent corruption(s) — a fault changed an outcome without detection\n", silent)
		failed = true
	}
	for _, s := range sites {
		if detectedBySite[s] == 0 {
			fmt.Fprintf(os.Stderr, "faultbench: FAIL: site %s was never detected\n", s)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("all %d sites detected, no silent corruption\n", len(sites))
}

// pickVulns selects the first n vulnerabilities that include a victim access
// step (secure-region traffic, so the RF-only sites can fire).
func pickVulns(n int) []model.Vulnerability {
	var out []model.Vulnerability
	for _, v := range model.Enumerate() {
		for _, s := range v.Pattern {
			if s.Actor == model.ActorV && (s.Class == model.ClassU || s.Class == model.ClassA) {
				out = append(out, v)
				break
			}
		}
		if len(out) == n {
			break
		}
	}
	return out
}

// validateFlags rejects invalid sampling parameters up front with a clear
// message, instead of letting a zero-trial matrix report a vacuous pass or
// a bad pool size fail inside the sweep.
func validateFlags(trials, nvulns, parallel int) error {
	if trials <= 0 {
		return fmt.Errorf("-trials must be positive, got %d", trials)
	}
	if nvulns <= 0 {
		return fmt.Errorf("-vulns must be positive, got %d", nvulns)
	}
	if max := len(model.Enumerate()); nvulns > max {
		return fmt.Errorf("-vulns %d exceeds the %d enumerated vulnerability types", nvulns, max)
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (0 = all CPUs), got %d", parallel)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultbench:", err)
	os.Exit(1)
}
