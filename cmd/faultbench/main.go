// Command faultbench runs the differential fault-injection matrix in one
// invocation: for every registered fault site and every TLB design (SA, FA,
// SP, RF, RI, FS — any design implementing tlb.TLB gets the battery for free
// via the assertion layer) it executes a clean and a faulted security campaign over
// identical trial seeds and classifies each faulted trial as detected
// (quarantined with a reported kind, broken down by the declarative
// assertion that fired), benign (fault landed, outcome bit-identical to the
// clean run) or latent (trigger never reached). The two at-rest checkpoint
// sites are exercised by corrupting a freshly written checkpoint file and
// requiring the resume to fail loudly.
//
// Usage:
//
//	faultbench                      # full matrix, every site x every design
//	faultbench -site tlb-tag-flip   # one site
//	faultbench -trials 32 -vulns 3  # heavier sampling
//	faultbench -list                # print the registered sites
//
// The exit status is the acceptance verdict: non-zero if any fault changed a
// trial's outcome without being detected (silent corruption) or — unless
// -require-detect=false — if any site was never detected at all (useful for
// smoke runs whose trial counts are too small to trigger every site).
package main

import (
	"flag"
	"fmt"
	"os"

	"securetlb/internal/faultinject"
	"securetlb/internal/model"
)

func main() {
	trials := flag.Int("trials", 16, "trials per (site, design, vulnerability) cell")
	nvulns := flag.Int("vulns", 2, "how many vulnerability types to fault per cell")
	siteFlag := flag.String("site", "", "run a single site instead of the full matrix")
	seed := flag.Uint64("fault-seed", 0xfa115eed, "campaign-level fault seed")
	parallel := flag.Int("parallel", 0, "worker pool size for the matrix cells (0 = all CPUs)")
	requireDetect := flag.Bool("require-detect", true, "fail if a site is never detected (silent corruption always fails)")
	list := flag.Bool("list", false, "print the registered fault sites and exit")
	flag.Parse()

	if *list {
		for _, s := range faultinject.Sites() {
			fmt.Println(s)
		}
		return
	}
	if err := validateFlags(*trials, *nvulns, *parallel); err != nil {
		fatal(err)
	}
	sites := faultinject.Sites()
	if *siteFlag != "" {
		s, err := faultinject.ParseSite(*siteFlag)
		if err != nil {
			fatal(err)
		}
		sites = []faultinject.Site{s}
	}

	res, err := runMatrix(matrixConfig{
		Trials:   *trials,
		NVulns:   *nvulns,
		Seed:     *seed,
		Parallel: *parallel,
		Sites:    sites,
		Designs:  allDesigns(),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(renderMatrix(res))

	failed := false
	if res.Silent > 0 {
		fmt.Fprintf(os.Stderr, "faultbench: FAIL: %d silent corruption(s) — a fault changed an outcome without detection\n", res.Silent)
		failed = true
	}
	undetected := 0
	for _, s := range sites {
		if res.DetectedBySite[s] == 0 {
			undetected++
			if *requireDetect {
				fmt.Fprintf(os.Stderr, "faultbench: FAIL: site %s was never detected\n", s)
				failed = true
			} else {
				fmt.Fprintf(os.Stderr, "faultbench: note: site %s was never detected at this sampling depth\n", s)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	if undetected == 0 {
		fmt.Printf("all %d sites detected, no silent corruption\n", len(sites))
	} else {
		fmt.Printf("%d/%d sites detected, no silent corruption\n", len(sites)-undetected, len(sites))
	}
}

// validateFlags rejects invalid sampling parameters up front with a clear
// message, instead of letting a zero-trial matrix report a vacuous pass or
// a bad pool size fail inside the sweep.
func validateFlags(trials, nvulns, parallel int) error {
	if trials <= 0 {
		return fmt.Errorf("-trials must be positive, got %d", trials)
	}
	if nvulns <= 0 {
		return fmt.Errorf("-vulns must be positive, got %d", nvulns)
	}
	if max := len(model.Enumerate()); nvulns > max {
		return fmt.Errorf("-vulns %d exceeds the %d enumerated vulnerability types", nvulns, max)
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (0 = all CPUs), got %d", parallel)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultbench:", err)
	os.Exit(1)
}
