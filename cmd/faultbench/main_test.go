package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"securetlb/internal/faultinject"
	"securetlb/internal/model"
	"securetlb/internal/secbench"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(8, 2, 0); err != nil {
		t.Fatalf("valid defaults rejected: %v", err)
	}
	bad := []struct {
		name                     string
		trials, nvulns, parallel int
	}{
		{"zero trials", 0, 2, 0},
		{"negative trials", -1, 2, 0},
		{"zero vulns", 8, 0, 0},
		{"vulns beyond enumeration", 8, len(model.Enumerate()) + 1, 0},
		{"negative parallel", 8, 2, -1},
	}
	for _, tc := range bad {
		if err := validateFlags(tc.trials, tc.nvulns, tc.parallel); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestMatrixGolden pins the rendered full-matrix report for the machine
// sites — every design x every machine site at a small fixed sampling depth.
// The at-rest checkpoint sites are excluded: their detail strings embed
// nondeterministic temp-file paths. Regenerate with `go test -update`.
func TestMatrixGolden(t *testing.T) {
	res, err := runMatrix(matrixConfig{
		Trials:   4,
		NVulns:   1,
		Seed:     0xfa117,
		Parallel: 2,
		Sites:    faultinject.MachineSites(),
		Designs:  allDesigns(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := renderMatrix(res)
	path := filepath.Join("testdata", "matrix.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("matrix rendering diverged from golden (regenerate with -update if intended):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestMatrixCoversAllDesignSiteCells requires the one-invocation matrix to
// produce a row for every (machine site, applicable design) pair — the
// "whole battery in one run" contract of the CLI.
func TestMatrixCoversAllDesignSiteCells(t *testing.T) {
	res, err := runMatrix(matrixConfig{
		Trials:   2,
		NVulns:   1,
		Seed:     0xfa117,
		Parallel: 2,
		Sites:    faultinject.MachineSites(),
		Designs:  allDesigns(),
	})
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		site   faultinject.Site
		design string
	}
	have := map[key]bool{}
	for _, r := range res.Rows {
		have[key{r.cell.Site, r.cell.Design}] = true
	}
	want := 0
	for _, s := range faultinject.MachineSites() {
		ds := allDesigns()
		if s.RFOnly() || s.RIOnly() || s.FSOnly() {
			ds = secbench.DesignsForSite(s)
		}
		for _, d := range ds {
			want++
			if !have[key{s, d.String()}] {
				t.Errorf("missing matrix cell for %s on %s", s, d)
			}
		}
	}
	if len(have) != want {
		t.Errorf("matrix has %d cells, want %d", len(have), want)
	}
}
