package main

import (
	"testing"

	"securetlb/internal/model"
)

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(8, 2, 0); err != nil {
		t.Fatalf("valid defaults rejected: %v", err)
	}
	bad := []struct {
		name                     string
		trials, nvulns, parallel int
	}{
		{"zero trials", 0, 2, 0},
		{"negative trials", -1, 2, 0},
		{"zero vulns", 8, 0, 0},
		{"vulns beyond enumeration", 8, len(model.Enumerate()) + 1, 0},
		{"negative parallel", 8, 2, -1},
	}
	for _, tc := range bad {
		if err := validateFlags(tc.trials, tc.nvulns, tc.parallel); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
