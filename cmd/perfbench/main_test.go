package main

import "testing"

func TestValidateFlags(t *testing.T) {
	designs, err := validateFlags("all", 50, 0, 4, false, "")
	if err != nil {
		t.Fatalf("valid defaults rejected: %v", err)
	}
	if len(designs) == 0 {
		t.Fatal("no designs resolved for -design all")
	}
	bad := []struct {
		name                        string
		design                      string
		decrypts, parallel, ckEvery int
		resume                      bool
		ckPath                      string
	}{
		{"unknown design", "xx", 50, 0, 4, false, ""},
		{"zero decrypts", "sa", 0, 0, 4, false, ""},
		{"negative decrypts", "sa", -3, 0, 4, false, ""},
		{"negative parallel", "sa", 50, -1, 4, false, ""},
		{"zero checkpoint-every", "sa", 50, 0, 0, false, ""},
		{"resume without checkpoint", "sa", 50, 0, 4, true, ""},
	}
	for _, tc := range bad {
		if _, err := validateFlags(tc.design, tc.decrypts, tc.parallel, tc.ckEvery, tc.resume, tc.ckPath); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
