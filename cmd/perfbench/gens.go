package main

import "securetlb/internal/workload"

// perfGen aliases the workload generator interface for the headline sweep.
type perfGen = workload.Generator

func perfSpecSuite() []perfGen { return workload.SpecSuite() }
