// Command perfbench runs the performance evaluation of §6 and prints the
// IPC and MPKI data behind Figures 7a–7f: each TLB design across the seven
// configurations, with RSA (or SecRSA) alone and alongside each SPEC 2006
// stand-in.
//
// Usage:
//
//	perfbench                         # all designs, RSA and SecRSA, 50 runs
//	perfbench -design rf -decrypts 150
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"securetlb/internal/perf"
	"securetlb/internal/pool"
	"securetlb/internal/report"
)

func main() {
	design := flag.String("design", "all", "sa, sp, rf or all")
	decrypts := flag.Int("decrypts", 50, "RSA decryptions per run (paper: 50/100/150)")
	sweep := flag.Bool("sweep", false, "run the paper's full 50/100/150 decryption sweep")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	seed := flag.Uint64("seed", 1, "PRNG seed")
	parallel := flag.Int("parallel", 0, "worker pool size for the cell sweep (0 = all CPUs)")
	flag.Parse()

	var designs []perf.Design
	switch *design {
	case "sa":
		designs = []perf.Design{perf.SA}
	case "sp":
		designs = []perf.Design{perf.SP}
	case "rf":
		designs = []perf.Design{perf.RF}
	case "all":
		designs = []perf.Design{perf.SA, perf.SP, perf.RF}
	default:
		fmt.Fprintf(os.Stderr, "unknown design %q\n", *design)
		os.Exit(1)
	}

	runCounts := []int{*decrypts}
	if *sweep {
		runCounts = []int{50, 100, 150}
	}
	if *jsonOut {
		var all []perf.Row
		for _, d := range designs {
			for _, secure := range []bool{false, true} {
				for _, n := range runCounts {
					rows, err := perf.Figure7Parallel(d, secure, n, *seed, *parallel)
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					all = append(all, rows...)
				}
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for _, d := range designs {
		for _, secure := range []bool{false, true} {
			for _, decrypts := range runCounts {
				label := "RSA"
				if secure {
					label = "SecRSA"
				}
				fig := map[perf.Design]string{perf.SA: "7a/7d", perf.SP: "7b/7e", perf.RF: "7c/7f"}[d]
				fmt.Printf("Figure %s — %s TLB, %s, %d decryptions, %d workers\n",
					fig, d, label, decrypts, pool.Workers(*parallel))
				rows, err := perf.Figure7Parallel(d, secure, decrypts, *seed, *parallel)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				out := make([][]string, 0, len(rows))
				for _, r := range rows {
					out = append(out, []string{
						r.Geometry, r.Workload,
						fmt.Sprintf("%.3f", r.Metrics.IPC),
						fmt.Sprintf("%.2f", r.Metrics.MPKI),
						fmt.Sprintf("%d", r.Metrics.Instructions),
						fmt.Sprintf("%d", r.Metrics.TLBMisses),
					})
				}
				fmt.Print(report.Table([]string{"Config", "Workload", "IPC", "MPKI", "Instr", "Misses"}, out))
				fmt.Println()
			}
		}
	}
	printHeadlines(runCounts[0], *seed)
}

// printHeadlines reproduces the §6.3–6.5 summary ratios.
func printHeadlines(decrypts int, seed uint64) {
	g4w32 := perf.Geometry{Label: "4W 32", Entries: 32, Ways: 4}
	mpki := func(d perf.Design, secure bool) float64 {
		sum, n := 0.0, 0
		for _, spec := range specsAndNil() {
			row, err := perf.Cell(d, g4w32, spec, secure, decrypts, seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			sum += row.Metrics.MPKI
			n++
		}
		return sum / float64(n)
	}
	sa := mpki(perf.SA, false)
	sp := mpki(perf.SP, true)
	rf := mpki(perf.RF, true)
	fmt.Println("Headline ratios at 4W 32 (cf. §6.4–6.5):")
	fmt.Printf("  SP/SA MPKI: %.2fx (paper ~3.07x)\n", sp/sa)
	fmt.Printf("  RF/SA MPKI: %+.1f%% (paper ~+9.0%%)\n", 100*(rf-sa)/sa)
	fmt.Printf("  RF vs SP MPKI: %+.1f%% (paper ~-64.5%%)\n", 100*(rf-sp)/sp)
}

func specsAndNil() []perfGen {
	suite := perfSpecSuite()
	return append([]perfGen{nil}, suite...)
}
