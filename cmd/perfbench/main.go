// Command perfbench runs the performance evaluation of §6 and prints the
// IPC and MPKI data behind Figures 7a–7f: each TLB design across the seven
// configurations, with RSA (or SecRSA) alone and alongside each SPEC 2006
// stand-in.
//
// Usage:
//
//	perfbench                         # all designs, RSA and SecRSA, 50 runs
//	perfbench -design rf -decrypts 150
//	perfbench -sweep -checkpoint sweep.json         # resumable full sweep
//	perfbench -sweep -checkpoint sweep.json -resume
//
// SIGINT/SIGTERM stop the sweep gracefully: no new cells start, running
// cells drain, completed cells are printed, a final checkpoint is flushed,
// and the process exits with status 130.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"securetlb/internal/checkpoint"
	"securetlb/internal/perf"
	"securetlb/internal/pool"
)

func main() {
	design := flag.String("design", "all", "designs to run: "+perf.DesignUsage())
	decrypts := flag.Int("decrypts", 50, "RSA decryptions per run (paper: 50/100/150)")
	sweep := flag.Bool("sweep", false, "run the paper's full 50/100/150 decryption sweep")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	seed := flag.Uint64("seed", 1, "PRNG seed")
	parallel := flag.Int("parallel", 0, "worker pool size for the cell sweep (0 = all CPUs)")
	ckPath := flag.String("checkpoint", "", "checkpoint file: completed Figure 7 cells are recorded here")
	resume := flag.Bool("resume", false, "with -checkpoint: resume from an existing checkpoint file")
	ckEvery := flag.Int("checkpoint-every", 4, "flush the checkpoint every N completed cells")
	noTrace := flag.Bool("no-trace", false, "disable captured-stream replay; run every cell's generators in full (bit-identical, slower)")
	flag.Parse()
	perf.DisableTrace = *noTrace

	designs, err := validateFlags(*design, *decrypts, *parallel, *ckEvery, *resume, *ckPath)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var ck *checkpoint.File
	if *ckPath != "" {
		if ck, err = checkpoint.Open(*ckPath, perf.SweepFingerprint(*seed), *ckEvery, *resume); err != nil {
			fatal(err)
		}
		if *resume && ck.Len() > 0 {
			fmt.Fprintf(os.Stderr, "perfbench: resuming from %s (%d cells already complete)\n", *ckPath, ck.Len())
		}
	}

	runCounts := []int{*decrypts}
	if *sweep {
		runCounts = []int{50, 100, 150}
	}
	if *jsonOut {
		var all []perf.Row
		var interrupted error
	jsonSweep:
		for _, d := range designs {
			for _, secure := range []bool{false, true} {
				for _, n := range runCounts {
					rows, err := perf.Figure7Ctx(ctx, d, secure, n, *seed, *parallel, ck)
					all = append(all, rows...)
					if err != nil {
						if !isInterrupt(err) {
							fatal(err)
						}
						interrupted = err
						break jsonSweep
					}
				}
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fatal(err)
		}
		exitIfInterrupted(interrupted, *ckPath)
		return
	}
	var interrupted error
sweepLoop:
	for _, d := range designs {
		for _, secure := range []bool{false, true} {
			for _, decrypts := range runCounts {
				fmt.Print(perf.SweepHeader(d, secure, decrypts, pool.Workers(*parallel)))
				rows, err := perf.Figure7Ctx(ctx, d, secure, decrypts, *seed, *parallel, ck)
				if err != nil && !isInterrupt(err) {
					fatal(err)
				}
				fmt.Print(perf.FormatRows(rows))
				if err != nil {
					interrupted = err
					break sweepLoop
				}
			}
		}
	}
	if interrupted == nil {
		printHeadlines(runCounts[0], *seed)
	}
	exitIfInterrupted(interrupted, *ckPath)
}

// validateFlags rejects invalid flag combinations up front with a clear
// message, instead of letting a bad value fail deep inside the sweep. It
// returns the designs the -design selector names.
func validateFlags(design string, decrypts, parallel, ckEvery int, resume bool, ckPath string) ([]perf.Design, error) {
	designs, err := perf.ParseDesigns(design)
	if err != nil {
		return nil, err
	}
	if decrypts <= 0 {
		return nil, fmt.Errorf("-decrypts must be positive, got %d", decrypts)
	}
	if parallel < 0 {
		return nil, fmt.Errorf("-parallel must be >= 0 (0 = all CPUs), got %d", parallel)
	}
	if ckEvery < 1 {
		return nil, fmt.Errorf("-checkpoint-every must be >= 1, got %d", ckEvery)
	}
	if resume && ckPath == "" {
		return nil, errors.New("-resume requires -checkpoint")
	}
	return designs, nil
}

func isInterrupt(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perfbench:", err)
	os.Exit(1)
}

func exitIfInterrupted(err error, ckPath string) {
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "perfbench: interrupted — results above cover the completed cells only")
	if ckPath != "" {
		fmt.Fprintf(os.Stderr, "perfbench: progress saved; continue with -checkpoint %s -resume\n", ckPath)
	} else {
		fmt.Fprintln(os.Stderr, "perfbench: rerun with -checkpoint FILE to make interrupted runs resumable")
	}
	os.Exit(130)
}

// printHeadlines reproduces the §6.3–6.5 summary ratios.
func printHeadlines(decrypts int, seed uint64) {
	g4w32 := perf.Geometry{Label: "4W 32", Entries: 32, Ways: 4}
	mpki := func(d perf.Design, secure bool) float64 {
		sum, n := 0.0, 0
		for _, spec := range specsAndNil() {
			row, err := perf.Cell(d, g4w32, spec, secure, decrypts, seed)
			if err != nil {
				fatal(err)
			}
			sum += row.Metrics.MPKI
			n++
		}
		return sum / float64(n)
	}
	sa := mpki(perf.SA, false)
	sp := mpki(perf.SP, true)
	rf := mpki(perf.RF, true)
	fmt.Println("Headline ratios at 4W 32 (cf. §6.4–6.5):")
	fmt.Printf("  SP/SA MPKI: %.2fx (paper ~3.07x)\n", sp/sa)
	fmt.Printf("  RF/SA MPKI: %+.1f%% (paper ~+9.0%%)\n", 100*(rf-sa)/sa)
	fmt.Printf("  RF vs SP MPKI: %+.1f%% (paper ~-64.5%%)\n", 100*(rf-sp)/sp)
}

func specsAndNil() []perfGen {
	suite := perfSpecSuite()
	return append([]perfGen{nil}, suite...)
}
