// Command secbench runs the micro security benchmarks of §5 and prints the
// simulation-vs-theory comparison of the paper's Table 4.
//
// Usage:
//
//	secbench                       # all three designs, 500 trials each
//	secbench -design rf -trials 100
//	secbench -emit "Ad -> Vu -> Ad" -mapped   # print one generated benchmark
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"securetlb/internal/capacity"
	"securetlb/internal/model"
	"securetlb/internal/pool"
	"securetlb/internal/report"
	"securetlb/internal/secbench"
)

func main() {
	design := flag.String("design", "all", "sa, sp, rf or all")
	trials := flag.Int("trials", 500, "trials per victim behaviour (paper: 500)")
	extended := flag.Bool("extended", false, "run the Appendix B (Table 7) targeted-invalidation benchmarks instead of the base 24")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	emit := flag.String("emit", "", "print the generated benchmark for a pattern, e.g. \"Ad -> Vu -> Ad\"")
	mapped := flag.Bool("mapped", true, "with -emit: generate the mapped or not-mapped variant")
	parallel := flag.Int("parallel", 0, "worker pool size for trial sharding (0 = all CPUs)")
	flag.Parse()

	if *emit != "" {
		emitBenchmark(*emit, *mapped, parseDesigns(*design)[0], *extended)
		return
	}
	if *jsonOut {
		emitJSON(parseDesigns(*design), *trials, *extended, *parallel)
		return
	}
	for _, d := range parseDesigns(*design) {
		runDesign(d, *trials, *extended, *parallel)
	}
}

// jsonRow is the machine-readable form of one campaign row.
type jsonRow struct {
	Design          string  `json:"design"`
	Strategy        string  `json:"strategy"`
	Pattern         string  `json:"pattern"`
	Observation     string  `json:"observation"`
	Macro           string  `json:"macro"`
	MappedMisses    int     `json:"n_mapped_misses"`
	NotMappedMisses int     `json:"n_not_mapped_misses"`
	Trials          int     `json:"trials_per_behaviour"`
	P1              float64 `json:"p1_star"`
	P2              float64 `json:"p2_star"`
	C               float64 `json:"c_star"`
	CIHigh          float64 `json:"c_star_ci95_high"`
	Defended        bool    `json:"defended"`
}

func emitJSON(designs []secbench.Design, trials int, extended bool, parallel int) {
	var rows []jsonRow
	for _, d := range designs {
		cfg := secbench.DefaultConfig(d)
		cfg.Trials = trials
		var results []secbench.Result
		var err error
		if extended {
			results, err = cfg.RunAllExtendedParallel(parallel)
		} else {
			results, err = cfg.RunAllParallel(parallel)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, r := range results {
			rows = append(rows, jsonRow{
				Design:          d.String(),
				Strategy:        r.Vulnerability.Strategy,
				Pattern:         r.Vulnerability.Pattern.String(),
				Observation:     r.Vulnerability.Observation.String(),
				Macro:           r.Vulnerability.Macro,
				MappedMisses:    r.Counts.MappedMisses,
				NotMappedMisses: r.Counts.NotMappedMisses,
				Trials:          trials,
				P1:              r.P1,
				P2:              r.P2,
				C:               r.C,
				CIHigh:          r.CIHigh,
				Defended:        r.Defended(),
			})
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func parseDesigns(s string) []secbench.Design {
	switch s {
	case "sa":
		return []secbench.Design{secbench.DesignSA}
	case "sp":
		return []secbench.Design{secbench.DesignSP}
	case "rf":
		return []secbench.Design{secbench.DesignRF}
	case "all":
		return []secbench.Design{secbench.DesignSA, secbench.DesignSP, secbench.DesignRF}
	}
	fmt.Fprintf(os.Stderr, "unknown design %q (want sa, sp, rf or all)\n", s)
	os.Exit(1)
	return nil
}

func theoryFor(d secbench.Design, v model.Vulnerability) (p1, p2 float64) {
	switch d {
	case secbench.DesignSA:
		p1, p2, _ = capacity.DeterministicTheory(v, model.DesignASID)
	case secbench.DesignSP:
		p1, p2, _ = capacity.DeterministicTheory(v, model.DesignPartitioned)
	case secbench.DesignRF:
		p1, p2 = capacity.RFTheory(v, capacity.DefaultRFParams)
	}
	return p1, p2
}

func runDesign(d secbench.Design, trials int, extended bool, parallel int) {
	cfg := secbench.DefaultConfig(d)
	cfg.Trials = trials
	var results []secbench.Result
	var err error
	title := "Table 4"
	if extended {
		title = "Appendix B extension"
		results, err = cfg.RunAllExtendedParallel(parallel)
	} else {
		results, err = cfg.RunAllParallel(parallel)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s (%s) — %d mapped + %d not-mapped trials per vulnerability, %d workers\n",
		title, d, trials, trials, pool.Workers(parallel))
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		row := []string{
			r.Vulnerability.Strategy,
			r.Vulnerability.String(),
			fmt.Sprintf("%d", r.Counts.MappedMisses),
			report.F(r.P1),
		}
		if !extended {
			tp1, tp2 := theoryFor(d, r.Vulnerability)
			tc := capacity.MutualInformation(tp1, tp2)
			row = append(row, report.F(tp1),
				fmt.Sprintf("%d", r.Counts.NotMappedMisses),
				report.F(r.P2), report.F(tp2),
				report.F(r.C), report.F(tc))
		} else {
			row = append(row,
				fmt.Sprintf("%d", r.Counts.NotMappedMisses),
				report.F(r.P2), report.F(r.C))
		}
		row = append(row, report.F(r.CIHigh))
		rows = append(rows, append(row, report.Check(r.Defended())))
	}
	headers := []string{"Strategy", "Vulnerability", "nMM", "p1*", "p1", "nNM", "p2*", "p2", "C*", "C", "C*ci95", "verdict"}
	if extended {
		headers = []string{"Strategy", "Vulnerability", "nMM", "p1*", "nNM", "p2*", "C*", "C*ci95", "verdict"}
	}
	fmt.Print(report.Table(headers, rows))
	fmt.Printf("%s defends %d/%d vulnerability types\n\n", d, secbench.DefendedCount(results), len(results))
}

func emitBenchmark(pattern string, mapped bool, d secbench.Design, extended bool) {
	vulns := model.Enumerate()
	if extended {
		vulns = model.EnumerateExtended()
	}
	for _, v := range vulns {
		if v.Pattern.String() == pattern {
			src, err := secbench.DefaultConfig(d).Generate(v, mapped)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(src)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "no vulnerability with pattern %q; run tlbmodel for the list\n", pattern)
	os.Exit(1)
}
