// Command secbench runs the micro security benchmarks of §5 and prints the
// simulation-vs-theory comparison of the paper's Table 4.
//
// Usage:
//
//	secbench                       # the paper's three designs, 500 trials each
//	secbench -design full          # every design, including the RI/FS extensions
//	secbench -design rf -trials 100
//	secbench -emit "Ad -> Vu -> Ad" -mapped   # print one generated benchmark
//	secbench -checkpoint run.json             # checkpoint progress as you go
//	secbench -checkpoint run.json -resume     # continue an interrupted run
//	secbench -invariants                      # runtime invariant checking on
//	secbench -invariants -inject tlb-tag-flip # fault every trial, detect, quarantine
//
// SIGINT/SIGTERM stop the campaign gracefully: no new work starts, running
// trials drain, the completed vulnerabilities are printed, a final
// checkpoint is flushed, and the process exits with status 130. Trials that
// panic, exhaust their instruction budget or fault are quarantined (excluded
// from the statistics) and listed after the result tables with the seed and
// trial index needed to reproduce them.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"securetlb/internal/checkpoint"
	"securetlb/internal/faultinject"
	"securetlb/internal/model"
	"securetlb/internal/pool"
	"securetlb/internal/report"
	"securetlb/internal/secbench"
)

func main() {
	design := flag.String("design", "all", "designs to run: "+secbench.DesignUsage())
	trials := flag.Int("trials", 500, "trials per victim behaviour (paper: 500)")
	extended := flag.Bool("extended", false, "run the Appendix B (Table 7) targeted-invalidation benchmarks instead of the base 24")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	emit := flag.String("emit", "", "print the generated benchmark for a pattern, e.g. \"Ad -> Vu -> Ad\"")
	mapped := flag.Bool("mapped", true, "with -emit: generate the mapped or not-mapped variant")
	parallel := flag.Int("parallel", 0, "worker pool size for trial sharding (0 = all CPUs)")
	ckPath := flag.String("checkpoint", "", "checkpoint file: completed work units are recorded here")
	resume := flag.Bool("resume", false, "with -checkpoint: resume from an existing checkpoint file")
	ckEvery := flag.Int("checkpoint-every", 4, "flush the checkpoint every N completed work units")
	invariants := flag.Bool("invariants", false, "wrap every campaign TLB in the runtime invariant checker (violations quarantine the trial)")
	inject := flag.String("inject", "", "arm a fault-injection site on every trial (see faultbench -list); implies nothing about -invariants")
	faultSeed := flag.Uint64("fault-seed", 0xfa115eed, "campaign-level seed for -inject's per-trial injectors")
	noTrace := flag.Bool("no-trace", false, "disable trace-compiled trial replay; decode and execute every instruction of every trial (bit-identical, slower)")
	flag.Parse()

	designs, err := validateFlags(*design, *trials, *parallel, *ckEvery, *emit, *extended, *resume, *ckPath)
	if err != nil {
		fatal(err)
	}

	campaignCfg = campaignSettings{invariants: *invariants, faultSeed: *faultSeed, noTrace: *noTrace}
	if *inject != "" {
		site, err := faultinject.ParseSite(*inject)
		if err != nil {
			fatal(err)
		}
		campaignCfg.faultSite = site
	}

	if *emit != "" {
		emitBenchmark(*emit, *mapped, designs[0], *extended)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ck := openCheckpoint(designs, *trials, *extended, *ckPath, *resume, *ckEvery)

	var interrupted error
	if *jsonOut {
		interrupted = emitJSON(ctx, designs, *trials, *extended, *parallel, ck)
	} else {
		for _, d := range designs {
			err := runDesign(ctx, d, *trials, *extended, *parallel, ck)
			if err == nil {
				continue
			}
			if !isInterrupt(err) {
				fatal(err)
			}
			interrupted = err
			break
		}
	}
	if interrupted != nil {
		fmt.Fprintln(os.Stderr, "secbench: interrupted — results above cover the completed vulnerabilities only")
		if *ckPath != "" {
			fmt.Fprintf(os.Stderr, "secbench: progress saved; continue with -checkpoint %s -resume\n", *ckPath)
		} else {
			fmt.Fprintln(os.Stderr, "secbench: rerun with -checkpoint FILE to make interrupted runs resumable")
		}
		os.Exit(130)
	}
}

// validateFlags rejects invalid flag combinations up front with a clear
// message, instead of letting a bad value fail deep inside a campaign.
// It returns the designs the -design selector names.
func validateFlags(design string, trials, parallel, ckEvery int, emit string, extended, resume bool, ckPath string) ([]secbench.Design, error) {
	designs, err := secbench.ParseDesigns(design)
	if err != nil {
		return nil, err
	}
	if trials <= 0 {
		return nil, fmt.Errorf("-trials must be positive, got %d", trials)
	}
	if parallel < 0 {
		return nil, fmt.Errorf("-parallel must be >= 0 (0 = all CPUs), got %d", parallel)
	}
	if ckEvery < 1 {
		return nil, fmt.Errorf("-checkpoint-every must be >= 1, got %d", ckEvery)
	}
	if resume && ckPath == "" {
		return nil, errors.New("-resume requires -checkpoint")
	}
	if emit != "" {
		if _, err := findVulnerability(emit, extended); err != nil {
			return nil, err
		}
	}
	return designs, nil
}

// findVulnerability resolves an -emit pattern to its vulnerability type.
func findVulnerability(pattern string, extended bool) (model.Vulnerability, error) {
	vulns := model.Enumerate()
	if extended {
		vulns = model.EnumerateExtended()
	}
	for _, v := range vulns {
		if v.Pattern.String() == pattern {
			return v, nil
		}
	}
	return model.Vulnerability{}, fmt.Errorf("no vulnerability with pattern %q; run tlbmodel for the list", pattern)
}

func isInterrupt(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "secbench:", err)
	os.Exit(1)
}

// campaignSettings carries the flag-selected robustness options into every
// campaign configuration (and so into the checkpoint fingerprint).
type campaignSettings struct {
	invariants bool
	faultSite  faultinject.Site
	faultSeed  uint64
	noTrace    bool
}

var campaignCfg campaignSettings

// configFor builds the campaign configuration for one design under the
// current flags.
func configFor(d secbench.Design, trials int) secbench.Config {
	cfg := secbench.DefaultConfig(d)
	cfg.Trials = trials
	cfg.Invariants = campaignCfg.invariants
	cfg.FaultSite = campaignCfg.faultSite
	cfg.FaultSeed = campaignCfg.faultSeed
	// Replay is bit-identical to full execution (the guard tests prove it),
	// so DisableTrace deliberately stays out of the checkpoint fingerprint: a
	// checkpointed run may be resumed with the other execution mode.
	cfg.DisableTrace = campaignCfg.noTrace
	return cfg
}

// campaignFingerprint identifies this invocation's full workload for
// checkpoint validation: the per-design fingerprints of every campaign the
// flags select.
func campaignFingerprint(designs []secbench.Design, trials int, extended bool) string {
	fps := make([]string, 0, len(designs))
	for _, d := range designs {
		fps = append(fps, configFor(d, trials).Fingerprint(extended))
	}
	return strings.Join(fps, ";")
}

func openCheckpoint(designs []secbench.Design, trials int, extended bool, path string, resume bool, every int) *checkpoint.File {
	if path == "" {
		if resume {
			fatal(errors.New("-resume requires -checkpoint"))
		}
		return nil
	}
	ck, err := checkpoint.Open(path, campaignFingerprint(designs, trials, extended), every, resume)
	if err != nil {
		fatal(err)
	}
	if resume && ck.Len() > 0 {
		fmt.Fprintf(os.Stderr, "secbench: resuming from %s (%d work units already complete)\n", path, ck.Len())
	}
	return ck
}

func runCampaign(ctx context.Context, d secbench.Design, trials int, extended bool, parallel int, ck *checkpoint.File) (secbench.CampaignReport, error) {
	cfg := configFor(d, trials)
	opts := secbench.RunOptions{Parallelism: parallel, Checkpoint: ck}
	if extended {
		return cfg.RunAllExtendedCtx(ctx, opts)
	}
	return cfg.RunAllCtx(ctx, opts)
}

// jsonRow is the machine-readable form of one campaign row.
type jsonRow struct {
	Design          string `json:"design"`
	Strategy        string `json:"strategy"`
	Pattern         string `json:"pattern"`
	Observation     string `json:"observation"`
	Macro           string `json:"macro"`
	MappedMisses    int    `json:"n_mapped_misses"`
	NotMappedMisses int    `json:"n_not_mapped_misses"`
	Trials          int    `json:"trials_per_behaviour"`
	// MappedSurvivors/NotMappedSurvivors are the statistics' denominators:
	// Trials minus the quarantined trials of each behaviour.
	MappedSurvivors    int     `json:"n_mapped_survivors"`
	NotMappedSurvivors int     `json:"n_not_mapped_survivors"`
	P1                 float64 `json:"p1_star"`
	P2                 float64 `json:"p2_star"`
	C                  float64 `json:"c_star"`
	CIHigh             float64 `json:"c_star_ci95_high"`
	Defended           bool    `json:"defended"`
}

func emitJSON(ctx context.Context, designs []secbench.Design, trials int, extended bool, parallel int, ck *checkpoint.File) error {
	var rows []jsonRow
	var quarantined []secbench.Quarantined
	var interrupted error
	for _, d := range designs {
		rep, err := runCampaign(ctx, d, trials, extended, parallel, ck)
		if err != nil && !isInterrupt(err) {
			fatal(err)
		}
		for _, r := range rep.Results {
			rows = append(rows, jsonRow{
				Design:             d.String(),
				Strategy:           r.Vulnerability.Strategy,
				Pattern:            r.Vulnerability.Pattern.String(),
				Observation:        r.Vulnerability.Observation.String(),
				Macro:              r.Vulnerability.Macro,
				MappedMisses:       r.Counts.MappedMisses,
				NotMappedMisses:    r.Counts.NotMappedMisses,
				Trials:             trials,
				MappedSurvivors:    r.Counts.Mapped,
				NotMappedSurvivors: r.Counts.NotMapped,
				P1:                 r.P1,
				P2:                 r.P2,
				C:                  r.C,
				CIHigh:             r.CIHigh,
				Defended:           r.Defended(),
			})
		}
		quarantined = append(quarantined, rep.Quarantined...)
		if err != nil {
			interrupted = err
			break
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		fatal(err)
	}
	fmt.Fprint(os.Stderr, report.Quarantine(quarantineRows(quarantined)))
	return interrupted
}

func quarantineRows(qs []secbench.Quarantined) [][]string {
	return secbench.QuarantineRows(qs)
}

// runDesign runs one design's campaign and prints its tables. It returns
// nil on full completion, the context error when interrupted (after
// printing the completed part), and any infrastructure error verbatim.
func runDesign(ctx context.Context, d secbench.Design, trials int, extended bool, parallel int, ck *checkpoint.File) error {
	rep, err := runCampaign(ctx, d, trials, extended, parallel, ck)
	if err != nil && !isInterrupt(err) {
		return err
	}
	fmt.Print(secbench.FormatCampaign(d, trials, pool.Workers(parallel), extended, rep))
	return err
}

func emitBenchmark(pattern string, mapped bool, d secbench.Design, extended bool) {
	v, err := findVulnerability(pattern, extended)
	if err != nil {
		fatal(err)
	}
	src, err := secbench.DefaultConfig(d).Generate(v, mapped)
	if err != nil {
		fatal(err)
	}
	fmt.Print(src)
}
