package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"securetlb/internal/report"
	"securetlb/internal/secbench"
)

// buildSecbench compiles the secbench binary into a temp dir once per test
// run.
func buildSecbench(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "secbench")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestInterruptResumeBitIdentical is the end-to-end acceptance check for
// the ISSUE's resume contract: a SIGINT-interrupted secbench run resumed
// via -resume produces stdout bit-identical to an uninterrupted run.
func TestInterruptResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildSecbench(t)
	// Trials are sized so the campaign runs a few seconds: the SIGINT below
	// must land while most work units are still outstanding, or the test
	// would only exercise the finalize path.
	args := []string{"-design", "rf", "-trials", "20000", "-json"}

	// Reference: one uninterrupted run.
	var ref bytes.Buffer
	refCmd := exec.Command(bin, args...)
	refCmd.Stdout = &ref
	refCmd.Stderr = os.Stderr
	if err := refCmd.Run(); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Interrupted run: SIGINT as soon as the first checkpoint flush lands.
	ckPath := filepath.Join(t.TempDir(), "campaign.json")
	intCmd := exec.Command(bin, append(args, "-checkpoint", ckPath, "-checkpoint-every", "1")...)
	intCmd.Stdout = new(bytes.Buffer)
	if err := intCmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ckPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			intCmd.Process.Kill()
			t.Fatal("no checkpoint flush within 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := intCmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := intCmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("interrupted run exited without error (%v): campaign finished before the signal landed", err)
	}
	if code := ee.ExitCode(); code != 130 {
		t.Fatalf("interrupted run exit code = %d, want 130", code)
	}
	raw, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatalf("checkpoint missing after interrupt: %v", err)
	}
	var ck struct {
		Units map[string]json.RawMessage `json:"units"`
	}
	if err := json.Unmarshal(raw, &ck); err != nil {
		t.Fatalf("checkpoint not parseable: %v", err)
	}
	if n := len(ck.Units); n == 0 || n >= 48 {
		t.Logf("interrupt landed with %d/48 units complete; timing did not split the campaign", n)
	} else {
		t.Logf("interrupt landed with %d/48 units complete", n)
	}

	// Resume: must complete and reproduce the reference byte-for-byte.
	var res bytes.Buffer
	resCmd := exec.Command(bin, append(args, "-checkpoint", ckPath, "-resume")...)
	resCmd.Stdout = &res
	resCmd.Stderr = os.Stderr
	if err := resCmd.Run(); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !bytes.Equal(res.Bytes(), ref.Bytes()) {
		t.Errorf("resumed stdout differs from uninterrupted run (%d vs %d bytes)", res.Len(), ref.Len())
	}
}

func TestValidateFlags(t *testing.T) {
	designs, err := validateFlags("all", 500, 0, 4, "", false, false, "")
	if err != nil {
		t.Fatalf("valid defaults rejected: %v", err)
	}
	if len(designs) != 3 {
		t.Fatalf("designs for all = %d, want 3", len(designs))
	}
	bad := []struct {
		name                      string
		design                    string
		trials, parallel, ckEvery int
		emit                      string
		extended, resume          bool
		ckPath                    string
	}{
		{"unknown design", "xx", 500, 0, 4, "", false, false, ""},
		{"zero trials", "sa", 0, 0, 4, "", false, false, ""},
		{"negative trials", "sa", -5, 0, 4, "", false, false, ""},
		{"negative parallel", "sa", 500, -1, 4, "", false, false, ""},
		{"zero checkpoint-every", "sa", 500, 0, 0, "", false, false, ""},
		{"resume without checkpoint", "sa", 500, 0, 4, "", false, true, ""},
		{"unknown emit pattern", "sa", 500, 0, 4, "Zz -> Zz -> Zz", false, false, ""},
	}
	for _, tc := range bad {
		if _, err := validateFlags(tc.design, tc.trials, tc.parallel, tc.ckEvery, tc.emit, tc.extended, tc.resume, tc.ckPath); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestQuarantineRowsRendering(t *testing.T) {
	qs := []secbench.Quarantined{
		{
			Design: "SA TLB", Strategy: "TLB Flush + Reload",
			Pattern: "Ad -> Vu -> Aa", Observation: "fast",
			Mapped: true, Trial: 3, Seed: 0x1234,
			Kind: "invariant", Reason: "invariant violation [SA TLB] fill-present",
		},
		{
			Design: "RF TLB", Strategy: "Evict + Time",
			Pattern: "Vd -> Vu -> Va", Observation: "slow",
			Mapped: false, Trial: 17, Seed: 0xbeef,
			Kind: "panic", Reason: "runtime error: index out of range",
		},
	}
	rows := quarantineRows(qs)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0][2] != "mapped" || rows[1][2] != "not-mapped" {
		t.Errorf("behaviour column wrong: %q / %q", rows[0][2], rows[1][2])
	}
	out := report.Quarantine(rows)
	for _, want := range []string{"Ad -> Vu -> Aa (fast)", "0x1234", "invariant", "not-mapped", "17"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered quarantine missing %q:\n%s", want, out)
		}
	}
	// The empty case renders nothing — runDesign prints it unconditionally.
	if report.Quarantine(quarantineRows(nil)) != "" {
		t.Error("empty quarantine list produced output")
	}
}

// TestFreshCheckpointRefusesExistingFile: starting a new campaign over an
// existing checkpoint without -resume must fail rather than clobber it.
func TestFreshCheckpointRefusesExistingFile(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildSecbench(t)
	ckPath := filepath.Join(t.TempDir(), "ck.json")
	run := exec.Command(bin, "-design", "sa", "-trials", "2", "-json", "-checkpoint", ckPath)
	if out, err := run.CombinedOutput(); err != nil {
		t.Fatalf("first run: %v\n%s", err, out)
	}
	again := exec.Command(bin, "-design", "sa", "-trials", "2", "-json", "-checkpoint", ckPath)
	out, err := again.CombinedOutput()
	if err == nil {
		t.Fatalf("second run without -resume succeeded:\n%s", out)
	}
}
