// Command tlbmodel enumerates the timing-based TLB vulnerabilities of the
// three-step model, regenerating the paper's Table 2 (and, with -extended,
// the Appendix B Table 7). With -defenses it prints the analytical defense
// matrix behind Table 4, and with -reduce it applies Appendix A's
// Algorithm 1 to an arbitrary comma-separated step pattern.
//
// Usage:
//
//	tlbmodel                 # Table 2: the 24 base vulnerabilities
//	tlbmodel -extended       # Table 7: targeted-invalidation additions
//	tlbmodel -defenses       # which design defends which type
//	tlbmodel -stats          # per-stage candidate counts (1000 → … → 24)
//	tlbmodel -reduce Ad,Vu,Ad,*,Vd,Vu,Vd
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"securetlb/internal/model"
	"securetlb/internal/report"
)

func main() {
	extended := flag.Bool("extended", false, "enumerate the Appendix B extended vulnerabilities (Table 7)")
	defenses := flag.Bool("defenses", false, "print the per-design defense matrix")
	stats := flag.Bool("stats", false, "print enumeration stage counts")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	reduce := flag.String("reduce", "", "comma-separated step pattern to reduce with Algorithm 1")
	flag.Parse()

	switch {
	case *reduce != "":
		runReduce(*reduce)
	case *jsonOut:
		emitJSON(*extended)
	case *defenses:
		printDefenses()
	case *extended:
		printVulns("Table 7 — additional vulnerabilities with targeted invalidation",
			model.EnumerateExtended())
	default:
		printVulns("Table 2 — all timing-based TLB vulnerabilities", model.Enumerate())
	}
	if *stats && !*jsonOut {
		printStats(*extended)
	}
}

func emitJSON(extended bool) {
	type row struct {
		Strategy    string `json:"strategy"`
		Step1       string `json:"step1"`
		Step2       string `json:"step2"`
		Step3       string `json:"step3"`
		Observation string `json:"observation"`
		Macro       string `json:"macro"`
		KnownAttack string `json:"known_attack,omitempty"`
		SADefended  bool   `json:"sa_defended"`
		SPDefended  bool   `json:"sp_defended"`
		RFDefended  bool   `json:"rf_defended"`
	}
	vulns := model.Enumerate()
	if extended {
		vulns = model.EnumerateExtended()
	}
	var rows []row
	for _, v := range vulns {
		r := row{
			Strategy: v.Strategy,
			Step1:    v.Pattern[0].String(), Step2: v.Pattern[1].String(), Step3: v.Pattern[2].String(),
			Observation: v.Observation.String(),
			Macro:       v.Macro,
			KnownAttack: v.KnownAttack,
			SADefended:  !model.ObservationInformative(v.Pattern, model.DesignASID, v.Observation),
			SPDefended:  !model.ObservationInformative(v.Pattern, model.DesignPartitioned, v.Observation),
			RFDefended:  !extended, // analytical RF verdict covers the base model only
		}
		rows = append(rows, r)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tlbmodel:", err)
	os.Exit(1)
}

func printVulns(title string, vulns []model.Vulnerability) {
	fmt.Println(title)
	rows := make([][]string, 0, len(vulns))
	for _, v := range vulns {
		rows = append(rows, []string{
			v.Strategy,
			v.Pattern[0].String(), v.Pattern[1].String(),
			v.Pattern[2].String() + " (" + v.Observation.String() + ")",
			v.Macro,
			v.KnownAttack,
		})
	}
	fmt.Print(report.Table(
		[]string{"Attack Strategy", "Step 1", "Step 2", "Step 3", "Macro", "Known Attack"}, rows))
	fmt.Printf("total: %d vulnerability types\n", len(vulns))
}

func printDefenses() {
	reports := model.AnalyzeDefenses()
	rows := make([][]string, 0, len(reports))
	for _, r := range reports {
		rows = append(rows, []string{
			r.Vulnerability.String(),
			r.Vulnerability.Strategy,
			report.Check(r.SADefended),
			report.Check(r.SPDefended),
			report.Check(r.RFDefended),
		})
	}
	fmt.Print(report.Table([]string{"Vulnerability", "Strategy", "SA TLB", "SP TLB", "RF TLB"}, rows))
	c := model.CountDefenses(reports)
	fmt.Printf("defended: SA %d/%d, SP %d/%d, RF %d/%d\n", c.SA, c.Total, c.SP, c.Total, c.RF, c.Total)
}

func printStats(extended bool) {
	var s model.EnumerationStats
	if extended {
		_, s = model.EnumerateExtendedWithStats()
	} else {
		_, s = model.EnumerateWithStats()
	}
	fmt.Printf("\nenumeration stages: %d combinations -> %d after structural rules -> %d informative -> %d after alias dedup\n",
		s.Total, s.AfterRules, s.AfterOracle, s.AfterAliasDedup)
}

func runReduce(arg string) {
	var steps []model.State
	for _, tok := range strings.Split(arg, ",") {
		s, err := model.ParseState(strings.TrimSpace(tok))
		if err != nil {
			fatal(err)
		}
		steps = append(steps, s)
	}
	red := model.Reduce(steps)
	fmt.Printf("input pattern (%d steps): %v\n", len(steps), steps)
	for i, seg := range red.Segments {
		fmt.Printf("segment %d after Rules 1-3: %v\n", i+1, seg)
	}
	if len(red.Effective) == 0 {
		fmt.Println("no effective three-step vulnerability embedded")
		return
	}
	for _, v := range red.Effective {
		fmt.Printf("effective: %s  [%s, %s]\n", v, v.Strategy, v.Macro)
	}
}
