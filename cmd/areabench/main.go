// Command areabench prints the analytical area model behind the paper's
// Table 5: Slice LUT and Slice Register estimates for every TLB design and
// configuration, with deltas against the 32-entry 4-way SA baseline, plus
// the §6.6 headline overhead percentages.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"securetlb/internal/area"
	"securetlb/internal/report"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	flag.Parse()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		type row struct {
			Design    string `json:"design"`
			Config    string `json:"config"`
			LUTs      int    `json:"slice_luts"`
			DeltaLUTs int    `json:"delta_luts"`
			Regs      int    `json:"slice_registers"`
			DeltaRegs int    `json:"delta_registers"`
		}
		var rows []row
		for _, e := range area.Table5() {
			rows = append(rows, row{e.Design.String(), e.Geometry, e.LUTs, e.DeltaLUTs, e.Registers, e.DeltaRegisters})
		}
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Println("Table 5 — area model (calibrated to the ZC706 4W-32 SA baseline)")
	rows := make([][]string, 0, 31)
	for _, e := range area.Table5() {
		rows = append(rows, []string{
			e.Design.String(), e.Geometry,
			fmt.Sprintf("%d", e.LUTs), fmt.Sprintf("%+d", e.DeltaLUTs),
			fmt.Sprintf("%d", e.Registers), fmt.Sprintf("%+d", e.DeltaRegisters),
		})
	}
	fmt.Print(report.Table(
		[]string{"Design", "Config", "Slice LUTs", "dLUTs", "Slice Registers", "dRegs"}, rows))

	fmt.Println("\nOverheads vs same-geometry SA (§6.6 headlines, plus the RI/FS extensions):")
	for _, d := range []area.Design{area.SP, area.RF, area.RI, area.FS} {
		lut, reg, err := area.OverheadPercent(d, "4W 32")
		if err != nil {
			fmt.Fprintln(os.Stderr, "areabench:", err)
			os.Exit(1)
		}
		fmt.Printf("  %s 4W-32: %s LUTs, %s registers", d, report.Pct(lut), report.Pct(reg))
		switch d {
		case area.SP:
			fmt.Printf("   (paper: +0.4%% / +0.1%%)\n")
		case area.RF:
			fmt.Printf("   (paper: +6.2%% / +5.5%%)\n")
		default:
			fmt.Printf("   (extension; no paper row)\n")
		}
	}
}
