module securetlb

go 1.22
