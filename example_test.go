package securetlb_test

import (
	"fmt"

	"securetlb"
	"securetlb/internal/model"
)

// walker60 is a 60-cycle identity page walk for the examples.
func walker60() securetlb.Walker {
	return securetlb.WalkerFunc(func(asid securetlb.ASID, vpn securetlb.VPN) (securetlb.PPN, uint64, error) {
		return securetlb.PPN(vpn), 60, nil
	})
}

// The timing channel in three lines: the first translation walks the page
// tables (slow), the second hits (fast), and a different process ID misses
// again because entries are ASID-tagged.
func ExampleNewSATLB() {
	sa, _ := securetlb.NewSATLB(32, 4, walker60())
	r, _ := sa.Translate(1, 0x42)
	fmt.Println("victim first access:", r.Hit, r.Cycles)
	r, _ = sa.Translate(1, 0x42)
	fmt.Println("victim second access:", r.Hit, r.Cycles)
	r, _ = sa.Translate(2, 0x42)
	fmt.Println("other process, same page:", r.Hit)
	// Output:
	// victim first access: false 61
	// victim second access: true 1
	// other process, same page: false
}

// The Random-Fill TLB serves secure-region misses through a buffer and
// installs a random secure page instead, de-correlating TLB state from the
// victim's secret accesses.
func ExampleNewRFTLB() {
	rf, _ := securetlb.NewRFTLB(32, 8, walker60(), 5)
	rf.SetVictim(1)
	rf.SetSecureRegion(0x100, 3)
	r, _ := rf.Translate(1, 0x101)
	fmt.Println("requested page installed:", r.Filled)
	fmt.Println("random fill happened:", r.RandomFilled)
	fmt.Println("translation still returned:", r.PPN == 0x101)
	// Output:
	// requested page installed: false
	// random fill happened: true
	// translation still returned: true
}

// Enumerate reproduces the paper's Table 2: 24 vulnerability types across
// seven attack strategies.
func ExampleEnumerateVulnerabilities() {
	vulns := securetlb.EnumerateVulnerabilities()
	fmt.Println("types:", len(vulns))
	strategies := map[string]bool{}
	for _, v := range vulns {
		strategies[v.Strategy] = true
	}
	fmt.Println("strategies:", len(strategies))
	v := vulns[0]
	fmt.Printf("first: %s [%s]\n", v, v.Macro)
	// Output:
	// types: 24
	// strategies: 7
	// first: Aaalias -> Vu -> Va (fast) [IH]
}

// ReducePattern applies Appendix A's Algorithm 1: a 5-step pattern reduces
// to its embedded three-step vulnerability.
func ExampleReducePattern() {
	steps := []securetlb.State{model.Ainv, model.Ad, model.Vu, model.Ad, model.Star}
	for _, v := range securetlb.ReducePattern(steps) {
		fmt.Println(v.Strategy, "-", v)
	}
	// Output:
	// TLB Prime + Probe - Ad -> Vu -> Ad (slow)
}

// The defense matrix of Table 4, derived analytically.
func ExampleAnalyzeDefenses() {
	counts := map[string]int{}
	for _, r := range securetlb.AnalyzeDefenses() {
		if r.SADefended {
			counts["SA"]++
		}
		if r.SPDefended {
			counts["SP"]++
		}
		if r.RFDefended {
			counts["RF"]++
		}
	}
	fmt.Println("SA defends", counts["SA"], "| SP defends", counts["SP"], "| RF defends", counts["RF"])
	// Output:
	// SA defends 10 | SP defends 14 | RF defends 24
}
