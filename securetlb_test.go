package securetlb

import (
	"math/big"
	"testing"

	"securetlb/internal/attack"
	"securetlb/internal/model"
)

func identityWalker() Walker {
	return WalkerFunc(func(asid ASID, vpn VPN) (PPN, uint64, error) {
		return PPN(vpn), 60, nil
	})
}

func TestFacadeConstructors(t *testing.T) {
	w := identityWalker()
	sa, err := NewSATLB(32, 4, w)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := NewFATLB(32, w)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSPTLB(32, 4, 2, w)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := NewRFTLB(32, 8, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tl := range []TLB{sa, fa, sp, rf} {
		r, err := tl.Translate(1, 0x42)
		if err != nil || r.Hit {
			t.Errorf("%s: first access = (%+v, %v)", tl.Name(), r, err)
		}
	}
	var _ SecureTLB = sp
	var _ SecureTLB = rf
}

func TestFacadeEnumeration(t *testing.T) {
	if n := len(EnumerateVulnerabilities()); n != 24 {
		t.Errorf("base vulnerabilities = %d, want 24", n)
	}
	if n := len(EnumerateExtendedVulnerabilities()); n != 60 {
		t.Errorf("extended vulnerabilities = %d, want 60", n)
	}
	reports := AnalyzeDefenses()
	c := model.CountDefenses(reports)
	if c.SA != 10 || c.SP != 14 || c.RF != 24 {
		t.Errorf("defense counts = %+v", c)
	}
}

func TestFacadeReduce(t *testing.T) {
	found := ReducePattern([]State{model.Ainv, model.Ad, model.Vu, model.Ad})
	if len(found) != 1 || found[0].Strategy != "TLB Prime + Probe" {
		t.Errorf("reduce = %v", found)
	}
}

func TestFacadeCapacity(t *testing.T) {
	if MutualInformation(1, 0) != 1 || MutualInformation(0.3, 0.3) != 0 {
		t.Error("capacity endpoints wrong")
	}
}

func TestFacadeSecurityEvaluation(t *testing.T) {
	results, err := SecurityEvaluation(SA, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 24 {
		t.Fatalf("results = %d", len(results))
	}
	defended := 0
	for _, r := range results {
		if r.Defended() {
			defended++
		}
	}
	if defended != 10 {
		t.Errorf("SA defends %d, want 10", defended)
	}
	src, err := GenerateSecurityBenchmark(RF, results[0].Vulnerability, true)
	if err != nil || len(src) == 0 {
		t.Errorf("benchmark generation failed: %v", err)
	}
}

func TestFacadeAttack(t *testing.T) {
	rsa, err := NewRSAVictim(32, 3)
	if err != nil {
		t.Fatal(err)
	}
	sa, _ := NewSATLB(32, 8, identityWalker())
	env := AttackEnvironment{TLB: sa, AttackerASID: 0, VictimASID: 1}
	res, err := env.TLBleed(rsa, rsa.Encrypt(big.NewInt(99)), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.95 {
		t.Errorf("accuracy = %.2f", res.Accuracy)
	}
	var _ TLBleedResult = res
	var _ = attack.PrimeSetPages
}

func TestFacadePerfAndArea(t *testing.T) {
	rows, err := Figure7(PerfDesign(0), false, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 35 {
		t.Errorf("figure 7 rows = %d", len(rows))
	}
	if n := len(Table5()); n != 31 {
		t.Errorf("table 5 rows = %d, want 31 (19 paper rows + the RI/FS extensions)", n)
	}
}
