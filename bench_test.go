// Benchmark harness: one testing.B benchmark per paper table and figure,
// plus micro-benchmarks of the TLB designs and the ablation studies called
// out in DESIGN.md §5. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates (a scaled-down instance of) its experiment; the
// cmd/ tools run the full-size versions.
package securetlb

import (
	"fmt"
	"math/big"
	"testing"

	"securetlb/internal/area"
	"securetlb/internal/attack"
	"securetlb/internal/capacity"
	"securetlb/internal/model"
	"securetlb/internal/perf"
	"securetlb/internal/secbench"
	"securetlb/internal/tlb"
	"securetlb/internal/workload"
)

// --- Table 2: the three-step model enumeration ------------------------------

func BenchmarkTable2Enumeration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(model.Enumerate()) != 24 {
			b.Fatal("enumeration broke")
		}
	}
}

// --- Table 7 / Appendix B ----------------------------------------------------

func BenchmarkTable7ExtendedEnumeration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(model.EnumerateExtended()) != 60 {
			b.Fatal("extended enumeration broke")
		}
	}
}

// --- Appendix A / Algorithm 1 ------------------------------------------------

func BenchmarkAlgorithm1Reduction(b *testing.B) {
	steps := []model.State{
		model.Ainv, model.Ad, model.Vu, model.Ad, model.Star,
		model.Vu, model.Aa, model.Vu, model.Vinv, model.Vu, model.Aa,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(model.Reduce(steps).Effective) == 0 {
			b.Fatal("reduction lost the embedded vulnerabilities")
		}
	}
}

// --- Table 4: micro security benchmarks --------------------------------------

func benchTable4(b *testing.B, d secbench.Design, trials, wantDefended int, disableTrace bool) {
	cfg := secbench.DefaultConfig(d)
	// Scaled down; cmd/secbench runs the paper's 500 trials. The randomised
	// RF design needs more trials than the deterministic SA/SP to keep the
	// empirical capacity below the defended threshold.
	cfg.Trials = trials
	cfg.DisableTrace = disableTrace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := cfg.RunAll()
		if err != nil {
			b.Fatal(err)
		}
		if n := secbench.DefendedCount(results); n != wantDefended {
			b.Fatalf("defended %d, want %d", n, wantDefended)
		}
	}
}

func BenchmarkTable4SecurityEvalSA(b *testing.B) { benchTable4(b, secbench.DesignSA, 20, 10, false) }
func BenchmarkTable4SecurityEvalSP(b *testing.B) { benchTable4(b, secbench.DesignSP, 20, 14, false) }
func BenchmarkTable4SecurityEvalRF(b *testing.B) { benchTable4(b, secbench.DesignRF, 120, 24, false) }

// BenchmarkTable4SecurityEvalRFFullExec is the full-execution twin of
// BenchmarkTable4SecurityEvalRF: the identical RF campaign with trace replay
// disabled, so every trial decodes and executes its program from scratch.
// The ratio of the two is the campaign replay speedup BENCH_campaign.json
// records.
func BenchmarkTable4SecurityEvalRFFullExec(b *testing.B) {
	benchTable4(b, secbench.DesignRF, 120, 24, true)
}

// The RI and FS extension designs run the same scaled-down Table 4 campaign
// with their replay/full-execution twins. Both defend 18 of 24: what remains
// are exactly the six TLB-internal-collision patterns ending "… -> Vu -> Va
// fast", where the victim's own re-access is timed and no cross-context step
// sits between the priming access and the probe — nothing for the keyed
// index to decorrelate and no switch for the flush to fire on. The RI TLB is
// randomised like RF and gets the same trial count; FS is deterministic and
// runs at the SA/SP depth.
func BenchmarkTable4SecurityEvalRI(b *testing.B) { benchTable4(b, secbench.DesignRI, 120, 18, false) }
func BenchmarkTable4SecurityEvalRIFullExec(b *testing.B) {
	benchTable4(b, secbench.DesignRI, 120, 18, true)
}
func BenchmarkTable4SecurityEvalFS(b *testing.B) { benchTable4(b, secbench.DesignFS, 20, 18, false) }
func BenchmarkTable4SecurityEvalFSFullExec(b *testing.B) {
	benchTable4(b, secbench.DesignFS, 20, 18, true)
}

// --- trace-compiled campaign replay -------------------------------------------

// benchCampaign is the replay-vs-full A/B pair over the default security
// campaign (the full Table 4 sweep cmd/secbench runs: all 24 vulnerabilities
// against the SA, SP and RF designs at 120 trials/behaviour): identical work
// and identical results, differing only in whether trials replay captured
// traces or decode and execute every instruction. The defended counts are
// the Table 4 bottom line (10 + 14 + 24).
func benchCampaign(b *testing.B, disableTrace bool) {
	designs := []secbench.Design{secbench.DesignSA, secbench.DesignSP, secbench.DesignRF}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		defended := 0
		for _, d := range designs {
			cfg := secbench.DefaultConfig(d)
			cfg.Trials = 120
			cfg.DisableTrace = disableTrace
			results, err := cfg.RunAll()
			if err != nil {
				b.Fatal(err)
			}
			defended += secbench.DefendedCount(results)
		}
		if defended != 10+14+24 {
			b.Fatalf("defended %d, want %d", defended, 10+14+24)
		}
	}
}

func BenchmarkCampaignTraceReplay(b *testing.B) { benchCampaign(b, false) }
func BenchmarkCampaignFullExec(b *testing.B)    { benchCampaign(b, true) }

// --- Table 4 theory columns ---------------------------------------------------

func BenchmarkTable4Theory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := capacity.Table4Theory(capacity.DefaultRFParams)
		if err != nil || len(rows) != 24 {
			b.Fatalf("theory rows = %d (%v)", len(rows), err)
		}
	}
}

// --- Figures 7a-7f: IPC and MPKI sweeps ----------------------------------------

func benchFigure7(b *testing.B, d perf.Design, secure bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := perf.Figure7(d, secure, 3, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		var mpki float64
		for _, r := range rows {
			mpki += r.Metrics.MPKI
		}
		b.ReportMetric(mpki/float64(len(rows)), "avgMPKI")
	}
}

// benchFigure7Sweep is the Figure 7 half of the trace-replay A/B pair: the
// full three-design SecRSA sweep at a fixed seed, so the replay side reuses
// its captured access streams across iterations exactly as cmd/perfbench
// reuses them across cells. The guard tests in internal/perf prove the two
// sides produce bit-identical rows.
func benchFigure7Sweep(b *testing.B, disableTrace bool) {
	b.ReportAllocs()
	prev := perf.DisableTrace
	perf.DisableTrace = disableTrace
	defer func() { perf.DisableTrace = prev }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rows int
		for _, d := range []perf.Design{perf.SA, perf.SP, perf.RF} {
			rs, err := perf.Figure7(d, true, 3, 7)
			if err != nil {
				b.Fatal(err)
			}
			rows += len(rs)
		}
		if rows != 35+30+30 {
			b.Fatalf("rows %d, want %d", rows, 35+30+30)
		}
	}
}

func BenchmarkFigure7TraceReplay(b *testing.B) { benchFigure7Sweep(b, false) }
func BenchmarkFigure7FullExec(b *testing.B)    { benchFigure7Sweep(b, true) }

func BenchmarkFigure7aSAIPC(b *testing.B)    { benchFigure7(b, perf.SA, false) }
func BenchmarkFigure7bSPIPC(b *testing.B)    { benchFigure7(b, perf.SP, false) }
func BenchmarkFigure7cRFIPC(b *testing.B)    { benchFigure7(b, perf.RF, false) }
func BenchmarkFigure7dSASecRSA(b *testing.B) { benchFigure7(b, perf.SA, true) }
func BenchmarkFigure7eSPSecRSA(b *testing.B) { benchFigure7(b, perf.SP, true) }
func BenchmarkFigure7fRFSecRSA(b *testing.B) { benchFigure7(b, perf.RF, true) }

// --- Table 5: area model --------------------------------------------------------

func BenchmarkTable5AreaModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(area.Table5()) != 31 {
			b.Fatal("table 5 broke")
		}
	}
}

// --- End-to-end attack -----------------------------------------------------------

func BenchmarkTLBleedKeyRecovery(b *testing.B) {
	rsa, err := NewRSAVictim(64, 7)
	if err != nil {
		b.Fatal(err)
	}
	c := rsa.Encrypt(big.NewInt(12345))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sa, _ := tlb.NewSetAssoc(32, 8, identityWalker())
		env := attack.Environment{TLB: sa, AttackerASID: 0, VictimASID: 1}
		res, err := env.TLBleed(rsa, c, 4, 8)
		if err != nil || res.Accuracy < 0.95 {
			b.Fatalf("attack degraded: %.2f (%v)", res.Accuracy, err)
		}
	}
}

// --- TLB design micro-benchmarks ---------------------------------------------------

func benchTranslate(b *testing.B, mk func() (tlb.TLB, error)) {
	t, err := mk()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := t.Translate(1, tlb.VPN(i%64)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranslateSA4W32(b *testing.B) {
	benchTranslate(b, func() (tlb.TLB, error) { return tlb.NewSetAssoc(32, 4, identityWalker()) })
}

func BenchmarkTranslateFA32(b *testing.B) {
	benchTranslate(b, func() (tlb.TLB, error) { return tlb.NewFullyAssoc(32, identityWalker()) })
}

func BenchmarkTranslateSP4W32(b *testing.B) {
	benchTranslate(b, func() (tlb.TLB, error) {
		sp, err := tlb.NewSP(32, 4, 2, identityWalker())
		if err == nil {
			sp.SetVictim(1)
		}
		return sp, err
	})
}

func BenchmarkTranslateRF8W32Secure(b *testing.B) {
	benchTranslate(b, func() (tlb.TLB, error) {
		rf, err := tlb.NewRF(32, 8, identityWalker(), 1)
		if err == nil {
			rf.SetVictim(1)
			rf.SetSecureRegion(0, 31)
		}
		return rf, err
	})
}

// --- Ablations (DESIGN.md §5) --------------------------------------------------------

// BenchmarkAblationSPPartitionSweep sweeps the victim partition size and
// reports the co-run MPKI, the design-time trade-off §4.1.2 leaves open.
func BenchmarkAblationSPPartitionSweep(b *testing.B) {
	for _, victimWays := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("victimWays=%d", victimWays), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sp, err := tlb.NewSP(32, 4, victimWays, perfWalker())
				if err != nil {
					b.Fatal(err)
				}
				sp.SetVictim(1)
				m, err := perf.Run(perf.RunConfig{
					TLB: sp,
					Processes: []perf.Process{
						{ASID: 2, Gen: workload.Povray()},
					},
					MaxInstructions: 200_000,
					Seed:            int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(m.MPKI, "MPKI")
			}
		})
	}
}

// BenchmarkAblationRFLazyFill compares the paper's synchronous random fill
// against the rejected idle-cycle variant of §4.2.3: under a TLB-intensive
// secure workload the lazy engine starves and random fills are dropped.
func BenchmarkAblationRFLazyFill(b *testing.B) {
	for _, lazy := range []bool{false, true} {
		b.Run(fmt.Sprintf("lazy=%v", lazy), func(b *testing.B) {
			skipped := uint64(0)
			for i := 0; i < b.N; i++ {
				rf, err := tlb.NewRF(32, 8, identityWalker(), uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				rf.SetVictim(1)
				rf.SetSecureRegion(0x100, 31)
				rf.LazyFill = lazy
				rf.LazyFillWindow = 4
				for k := 0; k < 1000; k++ {
					if _, err := rf.Translate(1, tlb.VPN(0x100+uint64(k)%31)); err != nil {
						b.Fatal(err)
					}
				}
				skipped += rf.Stats().RandomFillSkips
			}
			b.ReportMetric(float64(skipped)/float64(b.N), "skippedFills")
		})
	}
}

// BenchmarkAblationRFWindowedVsFullRandom compares the footnote 6 windowed
// set randomisation with a secure region covering all sets versus one set:
// the window bounds how much of the TLB random fills can disturb.
func BenchmarkAblationRFWindowedVsFullRandom(b *testing.B) {
	for _, ssize := range []uint64{1, 4, 31} {
		b.Run(fmt.Sprintf("ssize=%d", ssize), func(b *testing.B) {
			evictions := uint64(0)
			for i := 0; i < b.N; i++ {
				rf, err := tlb.NewRF(32, 8, identityWalker(), uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				rf.SetVictim(1)
				rf.SetSecureRegion(0x100, ssize)
				for k := 0; k < 500; k++ {
					rf.Translate(1, tlb.VPN(0x100+uint64(k)%ssize))
					rf.Translate(2, tlb.VPN(0x500+uint64(k)%32))
				}
				evictions += rf.Stats().Evictions
			}
			b.ReportMetric(float64(evictions)/float64(b.N), "evictions")
		})
	}
}

func perfWalker() tlb.Walker {
	return tlb.WalkerFunc(func(asid tlb.ASID, vpn tlb.VPN) (tlb.PPN, uint64, error) {
		return tlb.PPN(vpn), 60, nil
	})
}

// BenchmarkAblationCoalescedSPReach quantifies the §6.4 suggestion: a
// COLT-style coalesced, partitioned TLB recovers the MPKI the SP TLB loses
// to its halved effective capacity.
func BenchmarkAblationCoalescedSPReach(b *testing.B) {
	variants := []struct {
		name string
		mk   func() (tlb.TLB, error)
	}{
		{"SA", func() (tlb.TLB, error) { return tlb.NewSetAssoc(32, 4, perfWalker()) }},
		{"SP", func() (tlb.TLB, error) {
			sp, err := tlb.NewSP(32, 4, 2, perfWalker())
			if err == nil {
				sp.SetVictim(1)
			}
			return sp, err
		}},
		{"CoalescedSPx8", func() (tlb.TLB, error) {
			co, err := tlb.NewCoalescedSP(32, 4, 8, 2, perfWalker())
			if err == nil {
				co.SetVictim(1)
			}
			return co, err
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := v.mk()
				if err != nil {
					b.Fatal(err)
				}
				m, err := perf.Run(perf.RunConfig{
					TLB:             t,
					Processes:       []perf.Process{{ASID: 2, Gen: workload.Povray()}},
					MaxInstructions: 200_000,
					Seed:            int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(m.MPKI, "MPKI")
			}
		})
	}
}

// --- Trial-sharded parallel runner --------------------------------------------

// The Serial/Parallel pairs below measure the campaign engine both ways on
// identical configurations; compare them with benchstat (or by eye) to see
// the trial-sharding speedup on this machine. The RF design is the
// interesting one: its randomised trials dominate the full sweep's runtime.

func benchRunVulnerability(b *testing.B, parallel bool) {
	cfg := secbench.DefaultConfig(secbench.DesignRF)
	cfg.Trials = 250
	v := model.Enumerate()[11]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if parallel {
			_, err = cfg.RunVulnerabilityParallel(v, 0)
		} else {
			_, err = cfg.RunVulnerability(v)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunVulnerabilitySerial(b *testing.B)   { benchRunVulnerability(b, false) }
func BenchmarkRunVulnerabilityParallel(b *testing.B) { benchRunVulnerability(b, true) }

func benchRunAll(b *testing.B, parallel bool) {
	cfg := secbench.DefaultConfig(secbench.DesignRF)
	cfg.Trials = 120
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var (
			results []secbench.Result
			err     error
		)
		if parallel {
			results, err = cfg.RunAllParallel(0)
		} else {
			results, err = cfg.RunAll()
		}
		if err != nil {
			b.Fatal(err)
		}
		if n := secbench.DefendedCount(results); n != 24 {
			b.Fatalf("defended %d, want 24", n)
		}
	}
}

func BenchmarkRunAllSerial(b *testing.B)   { benchRunAll(b, false) }
func BenchmarkRunAllParallel(b *testing.B) { benchRunAll(b, true) }
