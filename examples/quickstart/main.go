// Quickstart: build each TLB design, drive translations through it, and
// watch the timing channel (hit = 1 cycle, miss = 61 cycles) that the whole
// paper is about — then watch the RF TLB de-correlate it.
package main

import (
	"fmt"

	"securetlb"
)

func main() {
	// A walker stands in for the page-table walk: identity translation at a
	// 60-cycle cost (3 levels x 20-cycle memory).
	walker := securetlb.WalkerFunc(func(asid securetlb.ASID, vpn securetlb.VPN) (securetlb.PPN, uint64, error) {
		return securetlb.PPN(vpn), 60, nil
	})

	const victim, attacker = securetlb.ASID(1), securetlb.ASID(0)

	fmt.Println("== Standard SA TLB (32 entries, 4 ways) ==")
	sa, err := securetlb.NewSATLB(32, 4, walker)
	if err != nil {
		panic(err)
	}
	r, _ := sa.Translate(victim, 0x1234)
	fmt.Printf("first access:  hit=%-5v cycles=%d   <- slow: page walk\n", r.Hit, r.Cycles)
	r, _ = sa.Translate(victim, 0x1234)
	fmt.Printf("second access: hit=%-5v cycles=%d    <- fast: cached translation\n", r.Hit, r.Cycles)
	r, _ = sa.Translate(attacker, 0x1234)
	fmt.Printf("attacker, same page: hit=%-5v       <- ASID tagging blocks cross-process hits\n", r.Hit)

	fmt.Println("\n== SP TLB: the attacker cannot evict the victim ==")
	sp, err := securetlb.NewSPTLB(32, 4, 2, walker)
	if err != nil {
		panic(err)
	}
	sp.SetVictim(victim)
	sp.Translate(victim, 0x40) // victim's entry in set 0
	for i := 0; i < 100; i++ { // attacker hammers the same set
		sp.Translate(attacker, securetlb.VPN(0x80+8*i))
	}
	r, _ = sp.Translate(victim, 0x40)
	fmt.Printf("victim re-access after attacker thrashing: hit=%v (partition isolation)\n", r.Hit)

	fmt.Println("\n== RF TLB: secure misses fill a random page instead ==")
	rf, err := securetlb.NewRFTLB(32, 8, walker, 5)
	if err != nil {
		panic(err)
	}
	rf.SetVictim(victim)
	rf.SetSecureRegion(0x100, 3) // 3 secure pages, like the RSA MPI pages
	r, _ = rf.Translate(victim, 0x101)
	fmt.Printf("secure miss: requested page filled=%v, random page %#x filled instead\n",
		r.Filled, r.RandomVPN)
	fmt.Printf("stats: %+v\n", rf.Stats())
}
