// TLBleed demo: the paper's motivating attack, end to end.
//
// A victim decrypts with libgcrypt-style square-and-multiply RSA; the tp
// pointer page is touched only on 1 exponent bits (Figure 5). The attacker
// Prime+Probes tp's TLB set per iteration and reads the key bit for bit —
// unless the TLB is one of the paper's secure designs.
package main

import (
	"fmt"
	"math/big"

	"securetlb"
	"securetlb/internal/attack"
	"securetlb/internal/tlb"
)

func walker() tlb.Walker {
	return tlb.WalkerFunc(func(asid tlb.ASID, vpn tlb.VPN) (tlb.PPN, uint64, error) {
		return tlb.PPN(vpn), 60, nil
	})
}

func main() {
	rsa, err := securetlb.NewRSAVictim(64, 2024)
	if err != nil {
		panic(err)
	}
	fmt.Printf("victim RSA: n has %d bits, secret d has %d bits\n", rsa.N.BitLen(), rsa.D.BitLen())
	ciphertext := rsa.Encrypt(big.NewInt(0x5ec7e7))

	run := func(name string, t tlb.TLB, nsets, nways int) {
		env := attack.Environment{TLB: t, AttackerASID: 0, VictimASID: 1}
		res, err := env.TLBleed(rsa, ciphertext, nsets, nways)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-28s recovered %3d/%3d key bits  (accuracy %.0f%%)\n",
			name, res.Correct, len(res.Actual), 100*res.Accuracy)
	}

	sa, _ := tlb.NewSetAssoc(32, 8, walker())
	run("standard SA TLB:", sa, 4, 8)

	fa, _ := tlb.NewFullyAssoc(32, walker())
	run("FA TLB (no sets):", fa, 1, 32)

	sp, _ := tlb.NewSP(32, 8, 4, walker())
	sp.SetVictim(1)
	run("SP TLB (partitioned):", sp, 4, 4)

	rf, _ := tlb.NewRF(32, 8, walker(), 99)
	rf.SetVictim(1)
	base, size := rsa.Layout.SecureRegion()
	rf.SetSecureRegion(base, size)
	run("RF TLB (random fill):", rf, 4, 8)

	fmt.Println("\nA coin-flip attacker scores ~50%: the SP and RF TLBs reduce")
	fmt.Println("TLBleed to guessing, while the standard SA TLB leaks the key.")
}
