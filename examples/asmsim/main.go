// Asmsim: drive the RISC-V-like simulation substrate directly — write a
// Figure 6-style assembly program, assemble it, run it on a core with a
// Random-Fill D-TLB, and read the performance counters the paper's
// benchmarks use.
package main

import (
	"fmt"

	"securetlb/internal/asm"
	"securetlb/internal/cpu"
	"securetlb/internal/tlb"
)

const program = `
	# Configure the RF TLB's security registers (trusted-OS job).
	csrwi victim_asid, 1
	li x1, secret
	srli x2, x1, 12
	csrw sbase, x2            # secure region = the page of 'secret'
	csrwi ssize, 1

	# Attacker touches its own page: a normal miss then a hit.
	csrwi process_id, 0
	la x3, public
	csrr x10, cycle
	ldnorm x4, 0(x3)          # miss: page walk
	csrr x11, cycle
	ldnorm x4, 0(x3)          # hit
	csrr x12, cycle

	# Victim reads the secret: served through the no-fill buffer.
	csrwi process_id, 1
	la x5, secret
	ldrand x6, 0(x5)

	csrr x13, tlb_miss_count
	pass

.data
public: .dword 123
.page
secret: .dword 424242
`

func main() {
	machine, err := cpu.NewSystem(20, func(w tlb.Walker) (tlb.TLB, error) {
		return tlb.NewRF(32, 8, w, 1)
	})
	if err != nil {
		panic(err)
	}
	prog, err := asm.Assemble(program)
	if err != nil {
		panic(err)
	}
	if err := machine.Load(prog, []tlb.ASID{0, 1}); err != nil {
		panic(err)
	}
	code, err := machine.Run(10_000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("exit code: %d (0 = RVTEST_PASS)\n", code)
	fmt.Printf("attacker miss latency: %d cycles, hit latency: %d cycles\n",
		machine.Reg(11)-machine.Reg(10), machine.Reg(12)-machine.Reg(11))
	fmt.Printf("victim read secret value: %d\n", machine.Reg(6))
	fmt.Printf("tlb_miss_count CSR: %d\n", machine.Reg(13))
	fmt.Printf("machine: %d instructions in %d cycles (IPC %.2f)\n",
		machine.Instret(), machine.Cycles(),
		float64(machine.Instret())/float64(machine.Cycles()))
	fmt.Printf("TLB stats: %+v\n", machine.TLB.Stats())
	rf := machine.TLB.(*tlb.RF)
	base, size := rf.SecureRegion()
	fmt.Printf("secure region: pages [%#x, %#x)\n", base, base+tlb.VPN(size))
	fmt.Printf("secret page cached directly? %v (no-fill buffer kept it out unless randomly drawn)\n",
		rf.Probe(1, base))
}
