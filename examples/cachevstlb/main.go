// Cache-vs-TLB demo: the paper's §1 motivating claim that "defending cache
// attacks does not protect against TLB attacks".
//
// The same RSA victim runs on a system with an L1 data cache and a D-TLB.
// The attacker mounts Prime+Probe at both granularities. Hardening the
// cache (way partitioning, as secure-cache proposals do) kills the
// cache-line channel — but the page-granular TLB channel still leaks the
// key until the TLB itself is secured.
package main

import (
	"fmt"
	"math/big"

	"securetlb/internal/attack"
	"securetlb/internal/cache"
	"securetlb/internal/tlb"
	"securetlb/internal/victim"
)

func walker() tlb.Walker {
	return tlb.WalkerFunc(func(asid tlb.ASID, vpn tlb.VPN) (tlb.PPN, uint64, error) {
		return tlb.PPN(vpn), 60, nil
	})
}

func main() {
	rsa, err := victim.NewRSA(64, 31337)
	if err != nil {
		panic(err)
	}
	ct := rsa.Encrypt(big.NewInt(0xCAFE))

	configs := []struct {
		name       string
		cacheVWays int
		secureTLB  bool
	}{
		{"plain cache + plain SA TLB", 0, false},
		{"partitioned cache + plain SA TLB", 4, false},
		{"partitioned cache + RF TLB", 4, true},
	}
	fmt.Println("key-recovery accuracy by attack granularity (coin flip = ~50%):")
	fmt.Println()
	for _, cfg := range configs {
		l1, err := cache.New(4096, 8, 64, cfg.cacheVWays)
		if err != nil {
			panic(err)
		}
		var dtlb tlb.TLB
		if cfg.secureTLB {
			rf, _ := tlb.NewRF(32, 8, walker(), 9)
			rf.SetVictim(1)
			base, size := rsa.Layout.SecureRegion()
			rf.SetSecureRegion(base, size)
			dtlb = rf
		} else {
			dtlb, _ = tlb.NewSetAssoc(32, 8, walker())
		}
		res, err := attack.CacheVsTLB(l1, dtlb, 4, 8, rsa, ct)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-36s cache attack: %3.0f%%   TLB attack: %3.0f%%\n",
			cfg.name, 100*res.CacheAccuracy, 100*res.TLBAccuracy)
	}
	fmt.Println()
	fmt.Println("Hardening only the cache leaves the TLB channel wide open (§1);")
	fmt.Println("the RF TLB closes it.")
}
