// Vulnerability scan: enumerate the three-step model, print one generated
// micro security benchmark, then run a quick Table 4-style campaign on all
// three TLB designs and report who defends what.
package main

import (
	"fmt"

	"securetlb"
)

func main() {
	vulns := securetlb.EnumerateVulnerabilities()
	fmt.Printf("three-step model: %d vulnerability types (paper Table 2)\n", len(vulns))
	byStrategy := map[string]int{}
	for _, v := range vulns {
		byStrategy[v.Strategy]++
	}
	for s, n := range byStrategy {
		fmt.Printf("  %-36s x%d\n", s, n)
	}
	extra := securetlb.EnumerateExtendedVulnerabilities()
	fmt.Printf("with targeted invalidation (Appendix B): %d additional types\n\n", len(extra))

	fmt.Println("example generated micro benchmark (TLB Prime + Probe, mapped):")
	src, err := securetlb.GenerateSecurityBenchmark(securetlb.RF, vulns[14], true)
	if err != nil {
		panic(err)
	}
	fmt.Println(firstLines(src, 12))

	const trials = 100
	fmt.Printf("running %d+%d trials per vulnerability per design...\n\n", trials, trials)
	for _, d := range []securetlb.SecurityDesign{securetlb.SA, securetlb.SP, securetlb.RF} {
		results, err := securetlb.SecurityEvaluation(d, trials)
		if err != nil {
			panic(err)
		}
		defended := 0
		for _, r := range results {
			if r.Defended() {
				defended++
			}
		}
		fmt.Printf("  %-7s defends %2d/24 vulnerability types\n", d, defended)
	}
	fmt.Println("\n(paper: SA 10/24, SP 14/24, RF 24/24)")
}

func firstLines(s string, n int) string {
	out, count := "", 0
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			count++
			if count >= n {
				return out + "\t..."
			}
		}
	}
	return out
}
