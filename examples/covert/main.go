// Covert channel demo: two cooperating processes with different process IDs
// and no shared memory communicate through TLB set contention (the paper's
// covert-channel scenario, §3.1) — until the TLB design closes the channel.
package main

import (
	"fmt"

	"securetlb/internal/attack"
	"securetlb/internal/tlb"
)

func walker() tlb.Walker {
	return tlb.WalkerFunc(func(asid tlb.ASID, vpn tlb.VPN) (tlb.PPN, uint64, error) {
		return tlb.PPN(vpn), 60, nil
	})
}

func main() {
	secret := []byte("MEET AT DAWN")
	fmt.Printf("sender wants to transmit: %q (%d bits)\n\n", secret, 8*len(secret))

	run := func(name string, tl tlb.TLB, nways int) {
		ch := attack.CovertChannel{
			TLB: tl, Sender: 1, Receiver: 0,
			NSets: 4, NWays: nways, Set: 2,
		}
		got, errs, err := ch.TransmitBytes(secret)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-24s received %-14q bit errors: %d/%d\n", name, got, errs, 8*len(secret))
	}

	sa, _ := tlb.NewSetAssoc(32, 8, walker())
	run("standard SA TLB:", sa, 8)

	sp, _ := tlb.NewSP(32, 8, 4, walker())
	sp.SetVictim(1) // the sender's fills are penned into its partition
	run("SP TLB:", sp, 4)

	rf, _ := tlb.NewRF(32, 8, walker(), 3)
	rf.SetVictim(1)
	rf.SetSecureRegion(0x20000, 32) // cover the sender's signalling pages
	run("RF TLB (secured pages):", rf, 8)

	fmt.Println("\nThe SA TLB carries the message noiselessly; the SP TLB decodes")
	fmt.Println("all zeros (the sender cannot displace the receiver's entries);")
	fmt.Println("the RF TLB garbles the channel when the signalling pages fall")
	fmt.Println("inside the secure region.")
}
