GO ?= go

.PHONY: build vet test race bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race detector exercises the trial-sharded campaign runner, the shared
# worker pool and the copy-on-write machine clones under contention.
race:
	$(GO) test -race ./...

# Serial-vs-parallel campaign engine comparison plus the Clone micro-costs.
bench:
	$(GO) test -run xxx -bench 'RunVulnerability|RunAll(Serial|Parallel)' -benchtime 2x .
	$(GO) test -run xxx -bench Clone ./internal/mem/ ./internal/cpu/

verify: build vet race
