GO ?= go
# FUZZTIME bounds each fuzz-smoke target; CI overrides it (e.g. FUZZTIME=10s)
# to trade exploration depth for turnaround.
FUZZTIME ?= 30s

# CHAOS_DATA names a directory the cluster chaos drill runs in and keeps
# (CI sets it and uploads the directory as an artifact when the audit
# fails). Empty, the default, uses a temp dir removed on success.
CHAOS_DATA ?=

.PHONY: build vet staticcheck test race bench bench-smoke smoke faults assert-smoke fuzz-smoke serve-smoke chaos-smoke verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. The tool is not vendored, so the target
# no-ops with a notice when it is absent (CI installs it; locally:
# go install honnef.co/go/tools/cmd/staticcheck@2024.1.1).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2024.1.1)"; \
	fi

test:
	$(GO) test ./...

# The race detector exercises the trial-sharded campaign runner, the shared
# worker pool, the copy-on-write machine clones and the resilient
# cancellation/checkpoint paths under contention. The timeout bounds a hung
# campaign (the exact failure mode the per-trial watchdog exists to prevent)
# so verify cannot wedge CI.
race:
	$(GO) test -race -timeout 10m ./...

# Serial-vs-parallel campaign engine comparison plus the Clone micro-costs,
# then the trace-replay A/B pairs aggregated into BENCH_campaign.json (the
# checked-in record of the capture-once/replay-everywhere speedup; medians
# across -count runs, so one noisy run cannot skew it).
bench:
	$(GO) test -run xxx -bench 'RunVulnerability|RunAll(Serial|Parallel)' -benchtime 2x .
	$(GO) test -run xxx -bench Clone ./internal/mem/ ./internal/cpu/
	$(GO) test -run xxx -bench 'Table4SecurityEval(RF|RI|FS)|Campaign(TraceReplay|FullExec)|Figure7(TraceReplay|FullExec)|Translate' \
		-benchmem -benchtime 20x -count 5 . | $(GO) run ./cmd/benchjson -out BENCH_campaign.json

# One-iteration pass over every benchmark: proves each still assembles its
# experiment and meets its internal checks (defended counts, row counts)
# without paying for statistically meaningful timings. Part of verify/CI so
# a refactor cannot silently break the benchmark harness.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x -timeout 10m ./...

# End-to-end resilience smoke: SIGINT a real secbench run, resume it from
# the checkpoint, and require bit-identical output — plus the in-process
# quarantine, cancellation and checkpoint determinism tests.
smoke:
	$(GO) test -count=1 -timeout 60s ./internal/checkpoint/
	$(GO) test -count=1 -timeout 60s -run 'InterruptResume|FreshCheckpoint|Resilient|Quarantin|Checkpoint|Cancel' ./internal/secbench/ ./cmd/secbench/

# Fast differential fault matrix: every registered fault site injected into
# real campaigns, exit non-zero on silent corruption or an undetected site.
faults:
	$(GO) run ./cmd/faultbench -trials 8 -vulns 2

# Assertion-layer smoke: the full design x fault-site matrix in one
# invocation at one trial per cell. Detection is not required at this depth
# (-require-detect=false) but any silent corruption still fails, proving the
# one-shot battery wiring end to end in seconds.
assert-smoke:
	$(GO) run ./cmd/faultbench -trials 1 -vulns 1 -require-detect=false

# Short native-fuzzing pass over the assembler, the binary program decoder
# and the RI TLB's index cipher (the checked-in corpora under testdata/fuzz
# run in plain `go test`; this explores beyond them).
fuzz-smoke:
	$(GO) test -fuzz FuzzAssemble -fuzztime $(FUZZTIME) ./internal/asm/
	$(GO) test -fuzz FuzzDecode -fuzztime $(FUZZTIME) ./internal/isa/
	$(GO) test -fuzz FuzzRandIdxCipher -fuzztime $(FUZZTIME) ./internal/tlb/

# End-to-end daemon smoke: start tlbserved, submit a job over HTTP, SIGTERM
# it mid-run, restart over the same data directory and require the resumed
# result byte-identical to an uninterrupted daemon's — plus the in-process
# coalescing/caching/streaming tests.
serve-smoke:
	$(GO) test -count=1 -race -timeout 10m ./internal/job/ ./internal/serve/
	$(GO) test -count=1 -timeout 10m -run 'SigtermRestart|MetricsAndCleanShutdown|Client' ./cmd/tlbserved/ ./cmd/tlbsim/

# Service-layer chaos smoke: a real tlbserved daemon (built with -race)
# under concurrent clients and seeded SIGKILLs mid-campaign; asserts zero
# lost jobs, duplication within the retry budget, and results bit-identical
# to direct runs. The second drill runs a 3-node lease-fenced cluster over
# one data directory, SIGKILLs individual lease-holding nodes past the
# lease TTL, and additionally audits the hand-offs: at least one genuine
# adoption, gapless lease-epoch histories, the terminal record owned at the
# newest epoch. The full acceptance run is `go run ./cmd/tlbchaos` with its
# defaults (32 clients, 5 kills).
chaos-smoke:
	$(GO) run ./cmd/tlbchaos -clients 8 -kills 2 -specs 4 -trials 15000 -race -timeout 5m
	$(GO) run ./cmd/tlbchaos -nodes 3 -clients 6 -kills 2 -specs 3 -trials 30000 -lease-ttl 1s -min-handoffs 1 -race -timeout 8m $(if $(CHAOS_DATA),-data $(CHAOS_DATA))

verify: build vet staticcheck race faults assert-smoke fuzz-smoke bench-smoke serve-smoke chaos-smoke
